package compiler

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/infer"
	"einsteinbarrier/internal/trace"
)

// Search-based placement. The three shipped placers are one-shot
// heuristics; SearchPlacer closes the loop with the thing we actually
// optimize for: it anneals over rectangle assignments and scores every
// candidate by compiling it (through the hoisted Lowered prefix) and
// pricing the compilation on the injected Evaluator — in production
// wiring, sim.PlacementEvaluator's Engine.RunBatch at a configurable
// batch size, i.e. measured inf/s with real NoC contention, never an
// analytic proxy. The three heuristics' outputs are warm starts and the
// best layout ever evaluated is what Place returns, so search ≥ best
// heuristic holds by construction.
//
// Determinism rule: the result is a pure function of (model, config,
// design, seed, steps). Every round proposes a FIXED number of
// candidates from the proposal RNG sequentially, scores them in
// parallel over the infer pool (scores are pure), and applies
// Metropolis acceptance in candidate-index order with one acceptance
// RNG draw per candidate — so the worker count never changes the RNG
// schedule or the outcome.

// DefaultSearchSteps is the default candidate-evaluation budget.
const DefaultSearchSteps = 240

// searchRound is the number of candidates proposed per annealing round
// — fixed, independent of the worker count, so parallel evaluation is
// bit-identical to serial.
const searchRound = 4

// Annealing temperature schedule: geometric from searchT0 to searchTEnd
// over the rounds, on the RELATIVE throughput delta (a candidate 2%
// slower than the incumbent is accepted with p=e^(-0.02/T)).
const (
	searchT0   = 0.05
	searchTEnd = 0.002
)

// Evaluator prices one candidate compilation. Implementations must be
// deterministic and safe for concurrent use; sim.PlacementEvaluator
// (single model, Engine.RunBatch) and sim.SetEvaluator (co-location,
// EngineSet.RunSet with a Jain-fairness-penalized aggregate) are the
// production ones. The compiler package cannot import sim, hence the
// injection.
type Evaluator interface {
	// Score returns the candidate's objective value (higher is better).
	Score(c *Compiled) (float64, error)
}

// CachedEvaluator is an Evaluator that can report a previously priced
// layout's score from the placement fingerprint alone — letting the
// search placer skip candidate compilation entirely on revisits (a
// border shift clamping back to the incumbent, an annealing walk
// retracing itself). CachedScore must return exactly what Score
// returned for the same layout, or report a miss; both sim evaluators
// implement it over their fingerprint memos.
type CachedEvaluator interface {
	Evaluator
	CachedScore(model string, design arch.Design, p *Placement) (float64, bool)
}

// SearchOptions parameterizes the annealing placer.
type SearchOptions struct {
	// Steps is the candidate-evaluation budget (0 = DefaultSearchSteps).
	Steps int
	// Seed seeds the proposal and acceptance RNG streams (0 = 1).
	Seed int64
	// Workers bounds the parallel candidate evaluation (0 = one per
	// CPU). The placement found is bit-identical at any worker count.
	Workers int
	// Trace, when non-nil, records the search trajectory — one counter
	// event per objective evaluation, the evaluation index as the time
	// axis — bit-identical at any Workers count (events are emitted
	// after each round's parallel evaluation, in candidate order).
	Trace *trace.Recorder
}

// WarmStart records one heuristic's objective value (or failure) under
// the search objective.
type WarmStart struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
	Err   string  `json:"err,omitempty"`
}

// SearchStats reports what one Place call did.
type SearchStats struct {
	// WarmStarts are the heuristic baselines, evaluated through the same
	// objective as every candidate.
	WarmStarts []WarmStart `json:"warm_starts"`
	// Steps counts objective evaluations (warm starts + candidates);
	// Rounds the annealing rounds; Accepted the Metropolis acceptances.
	Steps    int `json:"steps"`
	Rounds   int `json:"rounds"`
	Accepted int `json:"accepted"`
	// BestFrom names the origin of the returned layout: a heuristic, or
	// "anneal" when a searched candidate beat every warm start.
	BestFrom string `json:"best_from"`
	// BestScore is the returned layout's objective value.
	BestScore float64 `json:"best_score"`
	// Improved reports whether annealing strictly beat the best warm
	// start.
	Improved bool `json:"improved"`
}

// SearchPlacer is the annealing placer. Build it with NewSearchPlacer;
// it is bound to one (model, config, design) because it compiles
// candidates itself through the hoisted lowering prefix.
type SearchPlacer struct {
	low    *Lowered
	eval   Evaluator
	cached CachedEvaluator // eval, when it supports fingerprint probes
	opts   SearchOptions
	stats  SearchStats
}

// NewSearchPlacer binds the search to a model, architecture, design and
// objective. The model is lowered once here; every candidate placement
// reuses the prefix and pays only program assembly.
func NewSearchPlacer(model *bnn.Model, cfg arch.Config, design arch.Design, eval Evaluator, opts SearchOptions) (*SearchPlacer, error) {
	if eval == nil {
		return nil, fmt.Errorf("compiler: search placer needs an evaluator (wire sim.PlacementEvaluator or sim.SetEvaluator)")
	}
	if opts.Steps < 0 {
		return nil, fmt.Errorf("compiler: search steps %d must be ≥ 0", opts.Steps)
	}
	if opts.Steps == 0 {
		opts.Steps = DefaultSearchSteps
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	lw, err := Lower(model, cfg, design)
	if err != nil {
		return nil, err
	}
	sp := &SearchPlacer{low: lw, eval: eval, opts: opts}
	sp.cached, _ = eval.(CachedEvaluator)
	return sp, nil
}

// Name implements Placer.
func (sp *SearchPlacer) Name() string { return "search" }

// Exact implements Placer: the returned layout keeps the exactness of
// its best candidate (annealed layouts are always layout-exact; a
// winning greedy warm start keeps its average-hop program).
func (sp *SearchPlacer) Exact() bool { return true }

// Stats reports the last Place call's search trace.
func (sp *SearchPlacer) Stats() SearchStats { return sp.stats }

// scored is one evaluated candidate. Invalid decodes and infeasible
// compiles score -Inf and are never accepted or returned.
type scored struct {
	p     *Placement
	score float64
	valid bool
}

// Place implements Placer: simulated annealing over per-layer
// rectangles, warm-started from the heuristics, objective = the
// injected evaluator. The layers argument must be the demands of the
// bound model (CompileWith passes them through), and cfg the bound
// effective architecture.
func (sp *SearchPlacer) Place(layers []LayerDemand, cfg arch.Config, region Region) (*Placement, error) {
	if cfg != sp.low.cfg {
		return nil, fmt.Errorf("compiler: search placer is bound to another architecture config")
	}
	if len(layers) != len(sp.low.demands) {
		return nil, fmt.Errorf("compiler: search placer is bound to %s (%d layers), got %d layers",
			sp.low.ModelName, len(sp.low.demands), len(layers))
	}
	for i := range layers {
		if layers[i] != sp.low.demands[i] {
			return nil, fmt.Errorf("compiler: search placer is bound to %s; layer %d demand differs", sp.low.ModelName, i)
		}
	}
	st := SearchStats{BestScore: math.Inf(-1)}
	best := scored{score: math.Inf(-1)}
	str := newSearchTrace(sp.opts.Trace, sp.low.ModelName)

	// Warm starts: every heuristic that fits the region, scored through
	// the same objective as the candidates. The best one seeds the
	// annealing state AND floors the returned layout.
	for _, wp := range []Placer{GreedyPlacer{}, MeshPlacer{}, ShardPlacer{}} {
		p, err := wp.Place(sp.low.demands, cfg, region)
		if err != nil {
			st.WarmStarts = append(st.WarmStarts, WarmStart{Name: wp.Name(), Score: math.Inf(-1), Err: err.Error()})
			continue
		}
		s, err := sp.score(p, region)
		if err != nil {
			return nil, err
		}
		st.Steps++
		st.WarmStarts = append(st.WarmStarts, WarmStart{Name: wp.Name(), Score: s.score})
		str.warm(wp.Name(), st.Steps-1, s.score)
		if s.valid && s.score > best.score {
			best = s
			st.BestFrom = wp.Name()
			str.improved(st.Steps-1, s.score)
		}
	}
	if !best.valid {
		return nil, fmt.Errorf("compiler: search placer: no heuristic warm start fits region %s", region)
	}

	cur := encodeGenotype(best.p, cfg)
	curScore := best.score
	movable := movableIndices(cur)
	if len(movable) > 0 {
		prop := rand.New(rand.NewSource(sp.opts.Seed))
		acc := rand.New(rand.NewSource(sp.opts.Seed ^ 0x5851f42d4c957f2d))
		rounds := (sp.opts.Steps + searchRound - 1) / searchRound
		// Genotype memo for this Place call: decode and score are pure
		// functions of the genotype (region and cfg are fixed), so a
		// revisited genotype — clamped border shifts re-proposing the
		// incumbent, the walk retracing itself — reuses its result without
		// even decoding. The RNG schedule is untouched: proposals and
		// acceptance draws happen for every candidate regardless of hits.
		memo := map[string]scored{}
		cands := make([]genotype, searchRound)
		keys := make([]string, searchRound)
		results := make([]scored, searchRound)
		hit := make([]bool, searchRound)
		for round := 0; round < rounds; round++ {
			frac := 0.0
			if rounds > 1 {
				frac = float64(round) / float64(rounds-1)
			}
			temp := searchT0 * math.Pow(searchTEnd/searchT0, frac)
			// Misses are deduplicated within the round too (two mutations
			// can propose the same neighbor), then scored in parallel.
			miss := make(map[string]int, searchRound)
			var missCands []genotype
			for i := range cands {
				cands[i] = mutate(cur, movable, region, prop)
				keys[i] = genoKey(cands[i], movable)
				if s, ok := memo[keys[i]]; ok {
					results[i], hit[i] = s, true
					continue
				}
				hit[i] = false
				if _, ok := miss[keys[i]]; !ok {
					miss[keys[i]] = len(missCands)
					missCands = append(missCands, cands[i])
				}
			}
			missRes, err := infer.Map(sp.opts.Workers, len(missCands), func(_, i int) (scored, error) {
				p, derr := sp.decode(missCands[i], region, cfg)
				if derr != nil {
					return scored{score: math.Inf(-1)}, nil
				}
				return sp.score(p, region)
			})
			if err != nil {
				return nil, err
			}
			for i := range cands {
				if !hit[i] {
					results[i] = missRes[miss[keys[i]]]
					memo[keys[i]] = results[i]
				}
			}
			st.Rounds++
			st.Steps += searchRound
			for i, s := range results {
				step := st.Steps - searchRound + i
				// One acceptance draw per candidate, always consumed — the
				// RNG schedule never depends on validity or score.
				u := acc.Float64()
				if !s.valid {
					str.candidate(step, temp, s.score, false, false)
					continue
				}
				rel := (s.score - curScore) / math.Max(math.Abs(curScore), 1)
				accepted := rel >= 0 || u < math.Exp(rel/temp)
				str.candidate(step, temp, s.score, true, accepted)
				if s.score > best.score {
					best = s
					st.BestFrom = "anneal"
					st.Improved = true
					str.improved(step, s.score)
				}
				if accepted {
					cur, curScore = cands[i], s.score
					st.Accepted++
				}
			}
		}
	}
	out := *best.p
	out.Placer = "search"
	st.BestScore = best.score
	str.done(st)
	sp.stats = st
	return &out, nil
}

// score compiles one candidate layout through the hoisted prefix and
// prices it. Compile errors mean the candidate is infeasible (scored
// -Inf, never accepted); evaluator errors are real failures.
func (sp *SearchPlacer) score(p *Placement, region Region) (scored, error) {
	// A fingerprint the evaluator has already priced skips compilation
	// outright: the probe returns the memoized objective, which is by
	// contract exactly what compiling and scoring again would produce.
	if sp.cached != nil {
		if v, ok := sp.cached.CachedScore(sp.low.ModelName, sp.low.Design, p); ok {
			return scored{p: p, score: v, valid: true}, nil
		}
	}
	c, err := sp.low.Compile(Options{Placer: fixedPlacer{p}, Region: &region})
	if err != nil {
		return scored{p: p, score: math.Inf(-1)}, nil
	}
	v, err := sp.eval.Score(c)
	if err != nil {
		return scored{}, err
	}
	return scored{p: p, score: v, valid: true}, nil
}

// fixedPlacer replays a precomputed placement through the compile
// assembly — the bridge from candidate layouts to priced programs.
type fixedPlacer struct{ p *Placement }

func (f fixedPlacer) Name() string { return f.p.Placer }
func (f fixedPlacer) Exact() bool  { return f.p.Exact }
func (f fixedPlacer) Place(_ []LayerDemand, _ arch.Config, _ Region) (*Placement, error) {
	return f.p, nil
}

// --- genotype --------------------------------------------------------------

// layerGene is one layer's searchable layout: a region-relative
// rectangle on one region-relative chip, of which the first `tiles`
// cells (row-major) are the shard footprint. Multi-shard layers from a
// warm start (cross-chip splits) are carried verbatim and not searched
// — the neighborhood moves whole rectangles, not shard boundaries.
type layerGene struct {
	name   string
	fixed  bool
	shards []Shard // verbatim when fixed; never mutated
	chip   int     // region-relative chip index
	x, y   int     // region-relative rect origin
	w, h   int     // rect dims
	tiles  int     // tiles taken from the rect, row-major
	vcores int
}

type genotype []layerGene

// genoKey packs the movable genes into a compact memo key. Fixed genes
// never change across candidates of one Place call and tile/vcore
// counts are layer constants, so the movable rectangles (chip, origin,
// dims) identify the genotype completely.
func genoKey(g genotype, movable []int) string {
	buf := make([]byte, 0, 12*len(movable))
	for _, i := range movable {
		buf = strconv.AppendInt(buf, int64(g[i].chip), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(g[i].x), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(g[i].y), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(g[i].w), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(g[i].h), 10)
		buf = append(buf, ';')
	}
	return string(buf)
}

// movableIndices lists the genes the neighborhood moves may touch.
func movableIndices(g genotype) []int {
	var out []int
	for i := range g {
		if !g[i].fixed {
			out = append(out, i)
		}
	}
	return out
}

// encodeGenotype lifts a placement into the search representation:
// single-shard layers become their bounding rectangle (the decode may
// legally re-pack an L-shaped greedy span into the rect prefix — the
// candidate is re-scored either way), multi-shard layers are fixed.
func encodeGenotype(p *Placement, cfg arch.Config) genotype {
	w := cfg.MeshWidth()
	g := make(genotype, len(p.Layers))
	for i, lp := range p.Layers {
		gene := layerGene{name: lp.Name}
		if len(lp.Shards) != 1 {
			gene.fixed = true
			gene.shards = lp.Shards
		} else {
			sh := lp.Shards[0]
			minX, minY := math.MaxInt, math.MaxInt
			maxX, maxY := -1, -1
			for _, t := range sh.Tiles {
				x, y := t%w-p.Region.X0, t/w-p.Region.Y0
				minX, maxX = min(minX, x), max(maxX, x)
				minY, maxY = min(minY, y), max(maxY, y)
			}
			gene.chip = sh.Chip - p.Region.Chip
			gene.x, gene.y = minX, minY
			gene.w, gene.h = maxX-minX+1, maxY-minY+1
			gene.tiles = len(sh.Tiles)
			gene.vcores = sh.VCores
		}
		g[i] = gene
	}
	return g
}

// decode materializes a genotype as a layout-exact placement. Layer
// footprints may overlap — the pipeline engine models shared tiles as
// mutual exclusion, so overlap is a legal (if usually slow) layout the
// objective prices rather than a constraint violation. Rects that walk
// off the region or a partial mesh row are errors (scored -Inf).
func (sp *SearchPlacer) decode(g genotype, region Region, cfg arch.Config) (*Placement, error) {
	w := cfg.MeshWidth()
	p := &Placement{Placer: "search", Region: region, Exact: true,
		Layers: make([]LayerPlace, 0, len(g))}
	// One block of shard headers for the whole placement; the capped
	// three-index subslices keep a later append on one layer's Shards
	// from clobbering a neighbour's.
	shards := make([]Shard, 0, len(g))
	for _, gene := range g {
		if gene.fixed {
			p.Layers = append(p.Layers, LayerPlace{Name: gene.name, Shards: gene.shards})
			continue
		}
		if gene.x < 0 || gene.y < 0 || gene.w < 1 || gene.h < 1 ||
			gene.x+gene.w > region.W || gene.y+gene.h > region.H ||
			gene.chip < 0 || gene.chip >= region.Chips || gene.w*gene.h < gene.tiles {
			return nil, fmt.Errorf("compiler: search candidate rect for %s outside region %s", gene.name, region)
		}
		sh := Shard{Chip: region.Chip + gene.chip, VCores: gene.vcores}
		if gene.tiles > 0 {
			sh.Tiles = make([]int, 0, gene.tiles)
		}
		for i := 0; i < gene.tiles; i++ {
			x := gene.x + i%gene.w
			y := gene.y + i/gene.w
			t := (region.Y0+y)*w + region.X0 + x
			if t >= cfg.TilesPerNode {
				return nil, fmt.Errorf("compiler: search candidate for %s walks off the %d-tile chip", gene.name, cfg.TilesPerNode)
			}
			sh.Tiles = append(sh.Tiles, t)
		}
		shards = append(shards, sh)
		k := len(shards) - 1
		p.Layers = append(p.Layers, LayerPlace{Name: gene.name, Shards: shards[k : k+1 : k+1]})
	}
	return p, nil
}

// --- neighborhood moves ----------------------------------------------------

var shiftDirs = [8][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}}

// mutate proposes one neighbor: shift a layer's rectangle one step,
// reshape it (same tile count, new aspect), re-anchor it on a random
// chip/corner, or swap two layers' anchors. All draws come from the
// proposal RNG in a fixed order; out-of-range results clamp to the
// region, so a border shift may propose the incumbent itself — the
// evaluation cache absorbs the repeat.
func mutate(cur genotype, movable []int, region Region, rng *rand.Rand) genotype {
	g := append(genotype{}, cur...)
	kinds := 3
	if len(movable) >= 2 {
		kinds = 4
	}
	switch rng.Intn(kinds) {
	case 0: // shift
		i := movable[rng.Intn(len(movable))]
		d := shiftDirs[rng.Intn(len(shiftDirs))]
		g[i].x = clampInt(g[i].x+d[0], 0, region.W-g[i].w)
		g[i].y = clampInt(g[i].y+d[1], 0, region.H-g[i].h)
	case 1: // reshape: same tile count, new width from the valid set
		i := movable[rng.Intn(len(movable))]
		widths := make([]int, 0, min(g[i].tiles, region.W))
		for w := 1; w <= min(g[i].tiles, region.W); w++ {
			if (g[i].tiles+w-1)/w <= region.H {
				widths = append(widths, w)
			}
		}
		if len(widths) > 0 {
			g[i].w = widths[rng.Intn(len(widths))]
			g[i].h = (g[i].tiles + g[i].w - 1) / g[i].w
			g[i].x = clampInt(g[i].x, 0, region.W-g[i].w)
			g[i].y = clampInt(g[i].y, 0, region.H-g[i].h)
		}
	case 2: // re-anchor: teleport to a random chip and corner
		i := movable[rng.Intn(len(movable))]
		g[i].chip = rng.Intn(region.Chips)
		g[i].x = rng.Intn(region.W - g[i].w + 1)
		g[i].y = rng.Intn(region.H - g[i].h + 1)
	case 3: // swap two layers' anchors
		a := movable[rng.Intn(len(movable))]
		b := movable[rng.Intn(len(movable))]
		g[a].chip, g[b].chip = g[b].chip, g[a].chip
		g[a].x, g[b].x = g[b].x, g[a].x
		g[a].y, g[b].y = g[b].y, g[a].y
		g[a].x = clampInt(g[a].x, 0, region.W-g[a].w)
		g[a].y = clampInt(g[a].y, 0, region.H-g[a].h)
		g[b].x = clampInt(g[b].x, 0, region.W-g[b].w)
		g[b].y = clampInt(g[b].y, 0, region.H-g[b].h)
	}
	return g
}

func clampInt(v, lo, hi int) int {
	if hi < lo {
		return lo
	}
	return max(lo, min(v, hi))
}
