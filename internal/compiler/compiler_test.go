package compiler

import (
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/core"
	"einsteinbarrier/internal/isa"
)

func mustModel(t *testing.T, name string) *bnn.Model {
	t.Helper()
	m, err := bnn.NewModel(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompileAllZooAllDesigns(t *testing.T) {
	cfg := arch.DefaultConfig()
	for _, name := range bnn.ZooNames {
		m := mustModel(t, name)
		for _, d := range []arch.Design{arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier} {
			c, err := Compile(m, cfg, d)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, d, err)
			}
			if err := c.Program.Validate(); err != nil {
				t.Fatalf("%s/%v: invalid program: %v", name, d, err)
			}
			if c.VCoresUsed <= 0 || c.VCoresUsed > cfg.TotalVCores() {
				t.Fatalf("%s/%v: VCoresUsed = %d", name, d, c.VCoresUsed)
			}
			if len(c.Allocs) != len(m.Layers) {
				t.Fatalf("%s/%v: %d allocs for %d layers", name, d, len(c.Allocs), len(m.Layers))
			}
			if c.WeightWrites <= 0 {
				t.Fatalf("%s/%v: no weight writes", name, d)
			}
		}
	}
}

func TestBaselineUsesRowSteps(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "MLP-S")
	c, err := Compile(m, cfg, arch.BaselineEPCM)
	if err != nil {
		t.Fatal(err)
	}
	var rowSteps, mvms, mmms int
	for _, in := range c.Program {
		switch in.Op {
		case isa.OpRowStep:
			rowSteps++
		case isa.OpMVM:
			mvms++
		case isa.OpMMM:
			mmms++
		}
	}
	if rowSteps == 0 || mvms != 0 || mmms != 0 {
		t.Fatalf("baseline op mix wrong: rowsteps=%d mvms=%d mmms=%d", rowSteps, mvms, mmms)
	}
}

func TestTacitUsesMVMAndEBUsesMMM(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "CNN-S")
	tacit, err := Compile(m, cfg, arch.TacitEPCM)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := Compile(m, cfg, arch.EinsteinBarrier)
	if err != nil {
		t.Fatal(err)
	}
	count := func(p isa.Program, op isa.Opcode) int {
		n := 0
		for _, in := range p {
			if in.Op == op {
				n++
			}
		}
		return n
	}
	if count(tacit.Program, isa.OpMVM) == 0 || count(tacit.Program, isa.OpMMM) != 0 {
		t.Fatal("TacitMap must use MVM, not MMM")
	}
	if count(eb.Program, isa.OpMMM) == 0 || count(eb.Program, isa.OpMVM) != 0 {
		t.Fatal("EinsteinBarrier must use MMM, not MVM")
	}
}

func TestWDMBatchingReducesRepeats(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "CNN-M")
	tacit, _ := Compile(m, cfg, arch.TacitEPCM)
	eb, _ := Compile(m, cfg, arch.EinsteinBarrier)
	repeats := func(p isa.Program, op isa.Opcode) int64 {
		var r int64
		for _, in := range p {
			if in.Op == op {
				r += in.Repeat
			}
		}
		return r
	}
	rv, rm := repeats(tacit.Program, isa.OpMVM), repeats(eb.Program, isa.OpMMM)
	if rm >= rv {
		t.Fatalf("MMM repeats %d not below MVM repeats %d", rm, rv)
	}
	// Batching gain is bounded by K.
	if rv > rm*int64(cfg.WDMCapacity)+int64(len(tacit.Program)) {
		t.Fatalf("batching exceeds K: %d vs %d×%d", rv, rm, cfg.WDMCapacity)
	}
}

func TestStepCountsMatchPlans(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "MLP-M")
	c, err := Compile(m, cfg, arch.BaselineEPCM)
	if err != nil {
		t.Fatal(err)
	}
	for _, lc := range m.Costs() {
		if lc.Kind != "binary" {
			continue
		}
		plan, err := core.PlanCust(lc.Work.N, lc.Work.M, cfg.CrossbarRows, cfg.CrossbarCols/2)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, a := range c.Allocs {
			if a.Name == lc.Name {
				found = true
				want := int64(plan.RowActivationsPerInput()) * int64(lc.Work.Positions)
				if a.Steps != want {
					t.Fatalf("%s: steps = %d, want %d", lc.Name, a.Steps, want)
				}
			}
		}
		if !found {
			t.Fatalf("no alloc for %s", lc.Name)
		}
	}
}

func TestShapeLayersEmitNothing(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "CNN-S")
	c, _ := Compile(m, cfg, arch.TacitEPCM)
	for _, a := range c.Allocs {
		if a.Kind == "shape" && (a.Steps != 0 || a.VCores != 0) {
			t.Fatalf("shape layer %s should be free, got %+v", a.Name, a)
		}
	}
}

func TestCompileRejectsBadInputs(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.Nodes = 0
	if _, err := Compile(mustModel(t, "MLP-S"), cfg, arch.TacitEPCM); err == nil {
		t.Fatal("invalid arch should fail")
	}
	bad := &bnn.Model{ModelName: "empty", InputShape: []int{1}, Classes: 1}
	if _, err := Compile(bad, arch.DefaultConfig(), arch.TacitEPCM); err == nil {
		t.Fatal("invalid model should fail")
	}
}

func TestCapacityExceeded(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.Nodes = 1
	cfg.TilesPerNode = 1
	cfg.ECoresPerTile = 1
	cfg.VCoresPerECore = 1 // a single 256×256 crossbar
	if _, err := Compile(mustModel(t, "CNN-L"), cfg, arch.TacitEPCM); err == nil {
		t.Fatal("CNN-L cannot fit one crossbar")
	}
}

func TestEBNeverExceedsTacitVCores(t *testing.T) {
	// Both use the TacitMap layout, so the binary-layer footprint is
	// identical; EB's WDM batches in frequency, not space.
	cfg := arch.DefaultConfig()
	for _, name := range bnn.ZooNames {
		m := mustModel(t, name)
		tacit, err := Compile(m, cfg, arch.TacitEPCM)
		if err != nil {
			t.Fatal(err)
		}
		eb, err := Compile(m, cfg, arch.EinsteinBarrier)
		if err != nil {
			t.Fatal(err)
		}
		if eb.VCoresUsed != tacit.VCoresUsed {
			t.Fatalf("%s: EB uses %d vcores, Tacit %d", name, eb.VCoresUsed, tacit.VCoresUsed)
		}
	}
}

// TestMLCDesignPacksFPWeights: the multi-level design stores two weight
// slices per cell, so its high-precision layers program half the cells
// (fewer weight writes) in at most the tile footprint of the binary-cell
// design — while binary layers keep the 2-cell [w;¬w] mapping untouched.
func TestMLCDesignPacksFPWeights(t *testing.T) {
	cfg := arch.DefaultConfig()
	m, err := bnn.NewModel("CNN-S", 1)
	if err != nil {
		t.Fatal(err)
	}
	tacit, err := Compile(m, cfg, arch.TacitEPCM)
	if err != nil {
		t.Fatal(err)
	}
	mlc, err := Compile(m, cfg, arch.MLCEPCM)
	if err != nil {
		t.Fatal(err)
	}
	if mlc.WeightWrites >= tacit.WeightWrites {
		t.Fatalf("MLC weight writes %d not below Tacit %d", mlc.WeightWrites, tacit.WeightWrites)
	}
	for i, ta := range tacit.Allocs {
		ma := mlc.Allocs[i]
		switch ta.Kind {
		case "binary":
			if ma.VCores != ta.VCores || ma.Steps != ta.Steps {
				t.Fatalf("binary layer %s changed under MLC: %+v vs %+v", ta.Name, ma, ta)
			}
		case "fp":
			if ma.VCores > ta.VCores {
				t.Fatalf("fp layer %s grew under MLC: %d > %d tiles", ta.Name, ma.VCores, ta.VCores)
			}
		}
	}
}
