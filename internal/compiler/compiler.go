// Package compiler lowers a BNN model onto the EinsteinBarrier
// architecture: it plans the crossbar tiling of every layer (TacitMap
// or CustBinaryMap depending on the target design), allocates VCores,
// estimates the NoC traffic between consecutive layers, and emits the
// macro-op instruction stream (internal/isa) the simulator executes.
//
// It plays the role of the paper's "heavily extended version of the
// PUMA architecture and compiler" (§V-A).
package compiler

import (
	"fmt"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/core"
	"einsteinbarrier/internal/isa"
	"einsteinbarrier/internal/noc"
)

// LayerAlloc records where one layer lives and what it costs.
type LayerAlloc struct {
	// Name echoes the layer.
	Name string
	// Kind is "binary", "fp" or "shape".
	Kind string
	// VCores is the number of crossbars the layer occupies (0 for
	// shape layers).
	VCores int
	// FirstVCore is the flat index of the first allocated crossbar.
	FirstVCore int
	// Steps is the critical-path macro-step count per inference.
	Steps int64
}

// Compiled is the result of lowering one model for one design.
type Compiled struct {
	// Model and Design echo the inputs.
	ModelName string
	Design    arch.Design
	// Program is the executable instruction stream.
	Program isa.Program
	// Allocs has one entry per model layer.
	Allocs []LayerAlloc
	// VCoresUsed is the total crossbar count allocated.
	VCoresUsed int
	// WeightWrites counts device programming operations at load time.
	WeightWrites int64
	// Placement is the physical layout the placer chose (see placer.go).
	// The pipeline engine resolves region-relative tiles through it.
	Placement *Placement
}

// Options parameterizes CompileWith.
type Options struct {
	// Placer chooses the layout strategy; nil means GreedyPlacer (the
	// legacy flat allocation, bit-identical to the seed compiler).
	Placer Placer
	// Region restricts the placement to a fabric slice; nil means the
	// full fabric. CompileSet carves disjoint regions through this.
	Region *Region
}

// Compile lowers model onto cfg for the given design, resolved through
// the arch design registry (mapping strategy, WDM capability, cell
// density and architecture hooks all come from the registered spec).
// It uses the greedy placer over the full fabric — the seed compiler's
// exact layout and program.
func Compile(model *bnn.Model, cfg arch.Config, design arch.Design) (*Compiled, error) {
	return CompileWith(model, cfg, design, Options{})
}

// CompileWith lowers model with an explicit placement strategy. Layout-
// exact placers (MeshPlacer, ShardPlacer) rewrite SEND hop counts from
// the placement and stamp region-relative Src/Dst tile operands;
// sharded layers additionally gain inter-chip gather SENDs. The greedy
// placer keeps the allocator's average-hop estimate, so its programs
// are bit-identical to Compile's.
//
// CompileWith is Lower + Lowered.Compile: callers that compile one
// model under many placements (the search placer) hoist the lowering
// prefix with Lower and pay only the assembly per placement.
func CompileWith(model *bnn.Model, cfg arch.Config, design arch.Design, opts Options) (*Compiled, error) {
	lw, err := Lower(model, cfg, design)
	if err != nil {
		return nil, err
	}
	return lw.Compile(opts)
}

// demandOf sizes one VCore-owning layer for the placer: the output
// activation traffic and the cross-shard gather traffic (16-bit partial
// sums, not 1-bit activations). The single source of these formulas —
// CompileWith and CompileSet's dry-run sizing both go through it.
func demandOf(lc bnn.LayerCost, vcores int) LayerDemand {
	return LayerDemand{
		Name:         lc.Name,
		VCores:       vcores,
		Bytes:        max(lc.ActivationBytes, 1),
		PartialBytes: 2 * int64(lc.Work.N) * int64(max(lc.Work.Positions, 1)),
	}
}

// applyPlacement rewrites each layer's trailing SEND with layout-exact
// hop counts and region-relative Src/Dst operands, and splices in the
// inter-chip gather SENDs of sharded layers (partial sums from every
// secondary shard to the primary anchor, emitted before the layer's
// output transfer).
func applyPlacement(layerProgs []isa.Program, demands []LayerDemand, pl *Placement, cfg arch.Config, mesh noc.Config) error {
	rel := func(chip, tile int) (int, error) {
		r, err := pl.Region.RelTile(chip, tile, cfg)
		return r + 1, err
	}
	for li := range layerProgs {
		lp := pl.Layers[li]
		srcChip, srcTile := lp.Anchor()
		srcRel, err := rel(srcChip, srcTile)
		if err != nil {
			return err
		}
		sendIdx := -1
		for i, in := range layerProgs[li] {
			if in.Op == isa.OpSend {
				sendIdx = i
			}
		}
		if sendIdx < 0 {
			return fmt.Errorf("compiler: placed layer %s has no SEND", lp.Name)
		}
		send := &layerProgs[li][sendIdx]
		send.Src = srcRel
		if li+1 < len(pl.Layers) {
			dstChip, dstTile := pl.Layers[li+1].Anchor()
			hops, chipHops, err := routeHops(mesh, cfg, srcChip, srcTile, dstChip, dstTile)
			if err != nil {
				return err
			}
			send.Hops, send.ChipHops = hops, chipHops
			if send.Dst, err = rel(dstChip, dstTile); err != nil {
				return err
			}
		} else {
			// Host egress: drain to the corner, one board link out.
			hops, err := mesh.Hops(srcTile, mesh.EgressTile())
			if err != nil {
				return err
			}
			send.Hops, send.ChipHops, send.Dst = hops, 1, 0
		}
		// Gather SENDs for secondary shards, in shard order.
		var gathers isa.Program
		for _, sh := range lp.Shards[1:] {
			hops, chipHops, err := routeHops(mesh, cfg, sh.Chip, sh.Tiles[0], srcChip, srcTile)
			if err != nil {
				return err
			}
			shRel, err := rel(sh.Chip, sh.Tiles[0])
			if err != nil {
				return err
			}
			gathers = append(gathers, isa.Instruction{
				Op: isa.OpSend, Bytes: max(demands[li].PartialBytes, 1),
				Hops: hops, ChipHops: chipHops,
				Src: shRel, Dst: srcRel,
				Comment: lp.Name + "/gather",
			})
		}
		if len(gathers) > 0 {
			rest := append(isa.Program{}, layerProgs[li][sendIdx:]...)
			layerProgs[li] = append(append(layerProgs[li][:sendIdx:sendIdx], gathers...), rest...)
		}
	}
	return nil
}

// lowerBinary emits the instruction sequence of one binary layer,
// dispatching on the design's mapping strategy and WDM capability.
func lowerBinary(lc bnn.LayerCost, cfg arch.Config, spec arch.DesignSpec, k, avgHops int) (isa.Program, LayerAlloc, error) {
	w := lc.Work
	la := LayerAlloc{Name: lc.Name, Kind: lc.Kind}
	var prog isa.Program
	switch spec.Mapping {
	case arch.MappingCust:
		// CustBinaryMap: the 2T2R array has CrossbarCols/2 logical
		// columns. The baseline serializes vector operations (paper
		// §II: "at most one single vector operation at a time").
		plan, err := core.PlanCust(w.N, w.M, cfg.CrossbarRows, cfg.CrossbarCols/2)
		if err != nil {
			return nil, la, err
		}
		la.VCores = plan.Tiles()
		steps := int64(plan.RowActivationsPerInput())
		la.Steps = steps * int64(w.Positions)
		prog = append(prog,
			isa.Instruction{
				Op: isa.OpRowStep, Count: steps, Repeat: int64(w.Positions),
				Cells:   2 * int64(w.N) * int64(w.M), // (w,¬w) device pairs sensed per input
				Comment: lc.Name,
			},
			isa.Instruction{
				Op: isa.OpPopc, Count: int64(plan.PopcountOpsPerInput()) * int64(w.Positions),
				Comment: lc.Name,
			},
		)
		if adds := plan.DigitalAddsPerInput(); adds > 0 {
			prog = append(prog, isa.Instruction{
				Op: isa.OpAdd, Count: int64(adds) * int64(w.Positions), Comment: lc.Name,
			})
		}
	case arch.MappingTacit:
		plan, err := core.PlanTacit(w.N, w.M, cfg.CrossbarRows, cfg.CrossbarCols)
		if err != nil {
			return nil, la, err
		}
		la.VCores = plan.Tiles()
		convs := int64(plan.ADCConversionsPerInput())
		dacs := int64(plan.DACConversionsPerInput())
		cells := 2 * int64(w.N) * int64(w.M) // [w;¬w] cells conducting per activation
		if spec.WDM {
			repeats := int64(ceilDiv(w.Positions, k))
			la.Steps = repeats
			kEff := int64(min(k, w.Positions))
			prog = append(prog, isa.Instruction{
				Op: isa.OpMMM, Tiles: plan.Tiles(), K: k, Repeat: repeats,
				Convs: convs * kEff,
				DACs:  dacs * kEff,
				Cells: cells,
				// Count = rows the transmitter modulates per stream
				// ([x;¬x] slice, bounded by the array height).
				Count:   int64(min(2*w.M, cfg.CrossbarRows)),
				Comment: lc.Name,
			})
		} else {
			la.Steps = int64(w.Positions)
			prog = append(prog, isa.Instruction{
				Op: isa.OpMVM, Tiles: plan.Tiles(), Repeat: int64(w.Positions),
				Convs: convs, DACs: dacs, Cells: cells,
				Comment: lc.Name,
			})
		}
		if adds := plan.DigitalAddsPerInput(); adds > 0 {
			prog = append(prog, isa.Instruction{
				Op: isa.OpAdd, Count: int64(adds) * int64(w.Positions), Comment: lc.Name,
			})
		}
	default:
		return nil, la, fmt.Errorf("unknown mapping %v", spec.Mapping)
	}
	prog = append(prog,
		isa.Instruction{Op: isa.OpThresh, Count: int64(w.N) * int64(w.Positions), Comment: lc.Name},
		isa.Instruction{Op: isa.OpSend, Bytes: max(lc.ActivationBytes, 1), Hops: avgHops, Comment: lc.Name},
	)
	return prog, la, nil
}

// weightSlices is the number of cells one multi-bit weight occupies:
// InputBits slices on binary cells, packed BitsPerCell-per-device on
// multi-level-cell designs (device/mlc.go).
func weightSlices(cfg arch.Config, spec arch.DesignSpec) int {
	return ceilDiv(cfg.InputBits, spec.BitsPerCell())
}

// lowerFP emits the instruction sequence of a high-precision layer.
// FP layers run identically on every CIM design except for the VCore
// technology: multi-bit weights are bit-sliced across columns and the
// activations are bit-streamed (InputBits sequential binary VMMs with
// shift-and-add), the standard PUMA/ISAAC scheme. MLC designs pack
// BitsPerCell weight slices per device, shrinking the tile footprint
// and the converted-column count (their cost hook prices the finer
// readout). The compiler may replicate a first conv layer
// FPReplication× to process positions in parallel; WDM designs
// additionally batch positions across wavelengths.
func lowerFP(lc bnn.LayerCost, cfg arch.Config, spec arch.DesignSpec, k, avgHops int) (isa.Program, LayerAlloc, error) {
	la := LayerAlloc{Name: lc.Name, Kind: lc.Kind}
	positions := max(lc.Work.Positions, 1)
	// Layers with many positions (first conv layers) are replicated so
	// positions proceed in parallel; dense layers have one position and
	// gain nothing from replication.
	repl := 1
	if positions > 1 {
		repl = min(cfg.FPReplication, positions)
	}
	slices := int64(weightSlices(cfg, spec))
	// Tiles to hold the N×M weights at `slices` cells per weight.
	perReplica := int64(lc.Work.N) * int64(lc.Work.M) * slices
	tiles := int(ceilDiv64(perReplica, int64(cfg.CellsPerVCore())))
	if tiles < 1 {
		tiles = 1
	}
	tiles *= repl
	la.VCores = tiles

	batched := ceilDiv(positions, repl)
	if spec.WDM {
		batched = ceilDiv(batched, k)
	}
	la.Steps = int64(batched) * int64(cfg.InputBits)
	bits := int64(cfg.InputBits)
	// Per repeat: every replica fires once per input-bit step — N·slices
	// occupied columns convert on each of the bits steps.
	prog := isa.Program{
		isa.Instruction{
			Op: isa.OpFPMVM, Tiles: tiles, Bits: cfg.InputBits, Repeat: int64(batched),
			// K doubles as the input-stream (replica) count for FPMVM:
			// each replica needs its own modulated transmitter stream.
			K:       repl,
			Convs:   int64(lc.Work.N) * slices * bits * int64(repl),
			DACs:    int64(lc.Work.M) * bits * int64(repl),
			Cells:   int64(lc.Work.N) * int64(lc.Work.M) * slices * int64(repl),
			Count:   int64(min(lc.Work.M, cfg.CrossbarRows)),
			Comment: lc.Name,
		},
		isa.Instruction{Op: isa.OpSend, Bytes: max(lc.ActivationBytes, 1), Hops: avgHops, Comment: lc.Name},
	}
	return prog, la, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func ceilDiv64(a, b int64) int64 { return (a + b - 1) / b }
