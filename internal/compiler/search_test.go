package compiler

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/isa"
	"einsteinbarrier/internal/trace"
)

// hopEvaluator is a sim-free stand-in objective for the search tests:
// fewer SEND hops score higher (compactness), with a small bonus for
// disjoint footprints. Pure and stateless, so it is trivially
// deterministic and concurrency-safe — the properties the Evaluator
// contract demands.
type hopEvaluator struct{}

func (hopEvaluator) Score(c *Compiled) (float64, error) {
	hops := 0
	for _, in := range c.Program {
		if in.Op == isa.OpSend {
			hops += in.Hops + 4*in.ChipHops
		}
	}
	return 1000 - float64(hops), nil
}

// errEvaluator fails on every candidate — evaluator errors must abort
// the search, not be silently treated as infeasible layouts.
type errEvaluator struct{}

func (errEvaluator) Score(*Compiled) (float64, error) {
	return 0, errTestEvaluator
}

var errTestEvaluator = &testError{"evaluator exploded"}

type testError struct{ s string }

func (e *testError) Error() string { return e.s }

func TestNewSearchPlacerValidation(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "MLP-S")
	if _, err := NewSearchPlacer(m, cfg, arch.EinsteinBarrier, nil, SearchOptions{}); err == nil ||
		!strings.Contains(err.Error(), "evaluator") {
		t.Fatalf("nil evaluator: %v", err)
	}
	if _, err := NewSearchPlacer(m, cfg, arch.EinsteinBarrier, hopEvaluator{}, SearchOptions{Steps: -1}); err == nil {
		t.Fatal("negative steps must error")
	}
	sp, err := NewSearchPlacer(m, cfg, arch.EinsteinBarrier, hopEvaluator{}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name() != "search" || !sp.Exact() {
		t.Fatalf("Name/Exact = %q/%v", sp.Name(), sp.Exact())
	}
	// The placer is model-bound: compiling a different model through it
	// must be rejected, not silently misplace.
	other := mustModel(t, "CNN-L")
	if _, err := CompileWith(other, cfg, arch.EinsteinBarrier, Options{Placer: sp}); err == nil {
		t.Fatal("search placer bound to MLP-S must reject CNN-L")
	}
}

func TestSearchPlacerEvaluatorErrorsPropagate(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "MLP-S")
	sp, err := NewSearchPlacer(m, cfg, arch.EinsteinBarrier, errEvaluator{}, SearchOptions{Steps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: sp}); err == nil ||
		!strings.Contains(err.Error(), "evaluator exploded") {
		t.Fatalf("evaluator error not propagated: %v", err)
	}
}

// TestSearchPlacerDeterminism: the searched placement is a pure
// function of (model, config, design, seed, steps) — identical
// fingerprints across repeated runs AND across worker counts.
func TestSearchPlacerDeterminism(t *testing.T) {
	cfg := arch.DefaultConfig()
	for _, name := range []string{"MLP-S", "CNN-L"} {
		m := mustModel(t, name)
		var want string
		for run, workers := range []int{1, 1, 4, 3} {
			sp, err := NewSearchPlacer(m, cfg, arch.EinsteinBarrier, hopEvaluator{}, SearchOptions{
				Steps: 48, Seed: 7, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			c, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: sp})
			if err != nil {
				t.Fatal(err)
			}
			fp := c.Placement.Fingerprint()
			if run == 0 {
				want = fp
				continue
			}
			if fp != want {
				t.Fatalf("%s run %d (workers=%d): fingerprint drifted\n got: %s\nwant: %s",
					name, run, workers, fp, want)
			}
		}
	}
}

// TestSearchPlacerSeedMatters: different seeds may legitimately explore
// different walks; the stats must reflect a real search either way.
func TestSearchPlacerStats(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "MLP-L")
	sp, err := NewSearchPlacer(m, cfg, arch.EinsteinBarrier, hopEvaluator{}, SearchOptions{Steps: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: sp})
	if err != nil {
		t.Fatal(err)
	}
	st := sp.Stats()
	if len(st.WarmStarts) != 3 {
		t.Fatalf("%d warm starts", len(st.WarmStarts))
	}
	if st.Rounds != 10 || st.Steps < 40 {
		t.Fatalf("rounds=%d steps=%d for a 40-step budget", st.Rounds, st.Steps)
	}
	if st.BestFrom == "" || math.IsInf(st.BestScore, -1) {
		t.Fatalf("no best recorded: %+v", st)
	}
	if c.Placement.Placer != "search" {
		t.Fatalf("returned placer label %q", c.Placement.Placer)
	}
}

// TestSearchPlacerWarmStartFloor: search ≥ every heuristic under the
// SAME objective, by construction — the best layout ever evaluated
// (warm starts included) is what Place returns.
func TestSearchPlacerWarmStartFloor(t *testing.T) {
	cfg := arch.DefaultConfig()
	ev := hopEvaluator{}
	for _, name := range []string{"CNN-S", "MLP-L"} {
		m := mustModel(t, name)
		sp, err := NewSearchPlacer(m, cfg, arch.EinsteinBarrier, ev, SearchOptions{Steps: 32, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		c, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: sp})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.Score(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, hp := range []Placer{GreedyPlacer{}, MeshPlacer{}, ShardPlacer{}} {
			hc, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: hp})
			if err != nil {
				t.Fatal(err)
			}
			hs, err := ev.Score(hc)
			if err != nil {
				t.Fatal(err)
			}
			if got < hs {
				t.Fatalf("%s: search %.1f below %s %.1f", name, got, hp.Name(), hs)
			}
		}
		st := sp.Stats()
		if st.BestScore != got {
			t.Fatalf("%s: stats best %.1f, recompiled %.1f", name, st.BestScore, got)
		}
	}
}

// TestSearchPlacerShardedWarmStart: on a fabric where layers must split
// across chips, the multi-shard layers are carried fixed and the search
// still returns a valid, scored placement.
func TestSearchPlacerShardedWarmStart(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.TilesPerNode = 4
	cfg.Nodes = 8
	m := mustModel(t, "MLP-L")
	sp, err := NewSearchPlacer(m, cfg, arch.EinsteinBarrier, hopEvaluator{}, SearchOptions{Steps: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: sp})
	if err != nil {
		t.Fatal(err)
	}
	sharded := 0
	for _, lp := range c.Placement.Layers {
		if len(lp.Shards) > 1 {
			sharded++
		}
	}
	if sharded == 0 {
		t.Fatal("expected sharded layers to survive the search")
	}
	if err := c.Placement.Validate(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPlacementFingerprint: the fingerprint is the cache-key contract —
// region, exactness and per-layer shards in program order; the placer
// NAME is excluded (two placers proposing the same layout must share a
// cache entry).
func TestPlacementFingerprint(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "CNN-S")
	a, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: MeshPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: MeshPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Placement.Fingerprint() != b.Placement.Fingerprint() {
		t.Fatal("identical compiles produce different fingerprints")
	}
	relabeled := *a.Placement
	relabeled.Placer = "renamed"
	if relabeled.Fingerprint() != a.Placement.Fingerprint() {
		t.Fatal("fingerprint must not depend on the placer name")
	}
	g, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: GreedyPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Placement.Fingerprint() == a.Placement.Fingerprint() {
		t.Fatal("different layouts share a fingerprint")
	}
	if !strings.Contains(a.Placement.Fingerprint(), "!") {
		t.Fatal("exact placements must be marked in the fingerprint")
	}
	if strings.Contains(g.Placement.Fingerprint(), "!") {
		t.Fatal("inexact placements must not carry the exact marker")
	}
}

// TestSearchTraceWorkerInvariant: the candidate dump is part of the
// determinism contract — emission happens after each round's parallel
// evaluation, in candidate index order, so the byte-for-byte Chrome
// export must not depend on SearchOptions.Workers.
func TestSearchTraceWorkerInvariant(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "MLP-S")
	var want []byte
	for run, workers := range []int{1, 2, 4, 0} {
		rec := trace.New(1024)
		sp, err := NewSearchPlacer(m, cfg, arch.EinsteinBarrier, hopEvaluator{}, SearchOptions{
			Steps: 32, Seed: 11, Workers: workers, Trace: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: sp}); err != nil {
			t.Fatal(err)
		}
		if rec.Len() == 0 {
			t.Fatal("search emitted no trace events")
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, rec); err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("workers=%d: candidate trace drifted from workers=1 export", workers)
		}
	}
}
