package compiler

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/isa"
)

// TestGreedyCompileBitIdenticalToGolden pins the refactor's central
// contract: the greedy placer over the full fabric IS the seed
// compiler. The golden file was captured from the pre-placement-IR
// compiler (PR 4 tree) for every zoo network × registered design:
// program text, allocs, VCore count and weight writes must match byte
// for byte. (The golden's latency/energy lines are re-checked in
// internal/sim's golden tests; here we pin the compiler's own output.)
func TestGreedyCompileBitIdenticalToGolden(t *testing.T) {
	raw, err := os.ReadFile("testdata/compile_golden_pre_pr5.txt")
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.DefaultConfig()
	models, err := bnn.Zoo(1)
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	for _, m := range models {
		for _, d := range arch.Designs() {
			c, err := Compile(m, cfg, d)
			if err != nil {
				t.Fatalf("%s/%v: %v", m.Name(), d, err)
			}
			fmt.Fprintf(&got, "== %s/%v vcores=%d writes=%d\n", m.Name(), d, c.VCoresUsed, c.WeightWrites)
			for _, a := range c.Allocs {
				fmt.Fprintf(&got, "-- alloc %s kind=%s vcores=%d first=%d steps=%d\n",
					a.Name, a.Kind, a.VCores, a.FirstVCore, a.Steps)
			}
			got.WriteString(c.Program.String())
		}
	}
	// Strip the golden's latency/energy fields (owned by the sim tests)
	// so the comparison is compiler-only.
	var want strings.Builder
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if strings.HasPrefix(line, "== ") {
			if i := strings.Index(line, " latency="); i >= 0 {
				line = line[:i]
			}
		}
		want.WriteString(line)
		want.WriteByte('\n')
	}
	if got.String() != want.String() {
		gl, wl := strings.Split(got.String(), "\n"), strings.Split(want.String(), "\n")
		for i := range min(len(gl), len(wl)) {
			if gl[i] != wl[i] {
				t.Fatalf("line %d differs:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("output length differs: got %d lines, want %d", len(gl), len(wl))
	}
}

// goldenRunMetrics exposes the golden's pinned latency/energy per
// model×design for the sim package's cross-check (parsed here so the
// format lives next to the file).
func goldenRunMetrics(t *testing.T) map[string][2]float64 {
	t.Helper()
	raw, err := os.ReadFile("testdata/compile_golden_pre_pr5.txt")
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][2]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "== ") {
			continue
		}
		fields := strings.Fields(line[3:])
		var lat, en float64
		var key string
		key = fields[0]
		for _, f := range fields[1:] {
			if v, ok := strings.CutPrefix(f, "latency="); ok {
				lat, err = strconv.ParseFloat(v, 64)
				if err != nil {
					t.Fatal(err)
				}
			}
			if v, ok := strings.CutPrefix(f, "energy="); ok {
				en, err = strconv.ParseFloat(v, 64)
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		out[key] = [2]float64{lat, en}
	}
	return out
}

func TestGoldenFileParses(t *testing.T) {
	m := goldenRunMetrics(t)
	if len(m) < 18 { // 6 networks × ≥3 designs
		t.Fatalf("golden has %d run-metric rows", len(m))
	}
}

// TestGreedyPlacementMatchesAllocs: the greedy placement's tile
// footprint must equal the one the engine legacy-derived from
// FirstVCore/VCores — same spans, same sharing.
func TestGreedyPlacementMatchesAllocs(t *testing.T) {
	cfg := arch.DefaultConfig()
	per := cfg.ECoresPerTile * cfg.VCoresPerECore
	for _, name := range bnn.ZooNames {
		m := mustModel(t, name)
		c, err := Compile(m, cfg, arch.EinsteinBarrier)
		if err != nil {
			t.Fatal(err)
		}
		if c.Placement == nil {
			t.Fatal("greedy compile must attach a placement")
		}
		li := 0
		for _, a := range c.Allocs {
			if a.Kind == "shape" {
				continue
			}
			first := a.FirstVCore / per
			last := first
			if a.VCores > 0 {
				last = (a.FirstVCore + a.VCores - 1) / per
			}
			var want []int
			for g := first; g <= last; g++ {
				want = append(want, g)
			}
			got := c.Placement.GlobalTiles(li, cfg)
			if len(got) != len(want) {
				t.Fatalf("%s/%s: tiles %v, want %v", name, a.Name, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s/%s: tiles %v, want %v", name, a.Name, got, want)
				}
			}
			li++
		}
	}
}

// TestMeshPlacerDisjointCompactLayout: the locality-aware placer gives
// every layer a private footprint (no tile sharing) and its programs
// carry layout-exact hops with region-relative operands.
func TestMeshPlacerDisjointCompactLayout(t *testing.T) {
	cfg := arch.DefaultConfig()
	for _, name := range []string{"CNN-S", "CNN-L", "MLP-L"} {
		m := mustModel(t, name)
		c, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: MeshPlacer{}})
		if err != nil {
			t.Fatal(err)
		}
		if !c.Placement.Exact {
			t.Fatal("mesh placement must be layout-exact")
		}
		seen := map[int]string{}
		for li := range c.Placement.Layers {
			for _, g := range c.Placement.GlobalTiles(li, cfg) {
				if owner, ok := seen[g]; ok {
					t.Fatalf("%s: tile %d shared by %s and %s", name, g, owner, c.Placement.Layers[li].Name)
				}
				seen[g] = c.Placement.Layers[li].Name
			}
		}
		// Every SEND is stamped with a region-relative source.
		for _, in := range c.Program {
			if in.Op == isa.OpSend && in.Src == 0 {
				t.Fatalf("%s: placed SEND without src operand: %s", name, in)
			}
		}
	}
}

// TestShardPlacerSplitsAcrossChips: a layer bigger than one chip of its
// region is split, and the program gains inter-chip gather SENDs whose
// ChipHops carry the board-link distance.
func TestShardPlacerSplitsAcrossChips(t *testing.T) {
	cfg := arch.DefaultConfig()
	// Shrink the chips so MLP-L's big fc layers (≥5 tiles at 64
	// VCores/tile) exceed one 4-tile chip, with enough chips overall.
	cfg.TilesPerNode = 4
	cfg.Nodes = 8
	m := mustModel(t, "MLP-L")
	if _, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: MeshPlacer{}}); err == nil {
		t.Fatal("mesh placer should refuse a layer bigger than one chip")
	}
	c, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: ShardPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	sharded := 0
	for _, lp := range c.Placement.Layers {
		if len(lp.Shards) > 1 {
			sharded++
			chips := map[int]bool{}
			for _, sh := range lp.Shards {
				chips[sh.Chip] = true
			}
			if len(chips) < 2 {
				t.Fatalf("%s: %d shards all on one chip", lp.Name, len(lp.Shards))
			}
		}
	}
	if sharded == 0 {
		t.Fatal("no layer was sharded")
	}
	gathers := 0
	for _, in := range c.Program {
		if in.Op == isa.OpSend && strings.HasSuffix(in.Comment, "/gather") {
			gathers++
			if in.ChipHops < 1 {
				t.Fatalf("gather SEND without chip hops: %s", in)
			}
			if in.Src == 0 || in.Dst == 0 {
				t.Fatalf("gather SEND without region-relative operands: %s", in)
			}
		}
	}
	if gathers == 0 {
		t.Fatal("sharded compile emitted no gather SENDs")
	}
	// VCores are conserved across shards.
	for li, lp := range c.Placement.Layers {
		total := 0
		for _, sh := range lp.Shards {
			total += sh.VCores
		}
		var want int
		i := 0
		for _, a := range c.Allocs {
			if a.Kind == "shape" {
				continue
			}
			if i == li {
				want = a.VCores
				break
			}
			i++
		}
		if total != want {
			t.Fatalf("%s: shard VCores sum %d, alloc has %d", lp.Name, total, want)
		}
	}
}

// TestRegionRelativeRoundTrip: RelTile and ResolveTile invert each
// other over every tile of assorted regions.
func TestRegionRelativeRoundTrip(t *testing.T) {
	cfg := arch.DefaultConfig()
	for _, r := range []Region{
		FullFabric(cfg),
		{Chip: 1, Chips: 2, X0: 1, Y0: 2, W: 3, H: 2},
		{Chip: 3, Chips: 1, X0: 0, Y0: 0, W: 1, H: 1},
	} {
		if err := r.Validate(cfg); err != nil {
			t.Fatal(err)
		}
		for rel := 0; rel < r.Chips*r.W*r.H; rel++ {
			chip, tile, err := r.ResolveTile(rel, cfg)
			if err != nil {
				t.Fatal(err)
			}
			back, err := r.RelTile(chip, tile, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if back != rel {
				t.Fatalf("region %v: rel %d → (%d,%d) → %d", r, rel, chip, tile, back)
			}
		}
	}
	if err := (Region{Chip: 3, Chips: 2, X0: 0, Y0: 0, W: 4, H: 4}).Validate(cfg); err == nil {
		t.Fatal("region past the last chip must be invalid")
	}
}

func TestParsePlacer(t *testing.T) {
	for _, name := range HeuristicPlacerNames {
		p, err := ParsePlacer(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("ParsePlacer(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := ParsePlacer(""); err != nil || p.Name() != "greedy" {
		t.Fatalf("empty placer should default to greedy, got %v/%v", p, err)
	}
	// The search placer is model-bound: the name is reserved and the
	// error points the caller at NewSearchPlacer instead of the generic
	// unknown-placer message.
	if _, err := ParsePlacer("search"); err == nil || !strings.Contains(err.Error(), "NewSearchPlacer") {
		t.Fatalf("ParsePlacer(search) = %v, want a NewSearchPlacer pointer", err)
	}
	// Unknown names list every valid placer so callers can self-correct.
	_, err := ParsePlacer("nope")
	if err == nil {
		t.Fatal("unknown placer must error")
	}
	for _, name := range PlacerNames {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("unknown-placer error %q does not list %q", err, name)
		}
	}
}
