package compiler

import (
	"fmt"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/noc"
)

// Multi-model co-location. CompileSet carves the tile fabric into
// disjoint regions — one per model — and compiles every model into its
// region with the requested placer. The resulting Programs carry
// region-relative tile operands, so the same model compiles to the same
// program wherever its region lands; only the placement differs. The
// pipeline engine (sim.NewEngineSet) schedules the programs against
// shared NoC links and chip-egress ports, which is where co-location
// interference becomes measurable.

// SetOptions parameterizes CompileSet.
type SetOptions struct {
	// Placer lays out every model; nil means GreedyPlacer. Models whose
	// layers exceed one chip of their region need the ShardPlacer.
	Placer Placer
}

// layerDemands lowers just far enough to size every VCore-owning layer
// (the placer's input) without assembling a program.
func layerDemands(model *bnn.Model, cfg arch.Config, design arch.Design) ([]LayerDemand, error) {
	spec, err := design.Spec()
	if err != nil {
		return nil, fmt.Errorf("compiler: %w", err)
	}
	cfg = spec.EffectiveArch(cfg)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	mesh := noc.DefaultConfig(cfg.MeshWidth())
	avgHops := int(mesh.AverageHops() + 0.5)
	k := cfg.EffectiveK(design)
	var out []LayerDemand
	for _, lc := range model.Costs() {
		var la LayerAlloc
		switch lc.Kind {
		case "binary":
			if _, la, err = lowerBinary(lc, cfg, spec, k, avgHops); err != nil {
				return nil, fmt.Errorf("compiler: %s/%s: %w", model.Name(), lc.Name, err)
			}
		case "fp":
			if _, la, err = lowerFP(lc, cfg, spec, k, avgHops); err != nil {
				return nil, fmt.Errorf("compiler: %s/%s: %w", model.Name(), lc.Name, err)
			}
		default:
			continue
		}
		out = append(out, demandOf(lc, la.VCores))
	}
	return out, nil
}

// usedRows returns how many mesh rows of the region's last chip the
// placement actually occupies, plus the number of chips it spans.
func usedExtent(p *Placement, cfg arch.Config) (chips, lastChipRows int) {
	w := cfg.MeshWidth()
	maxChip := p.Region.Chip
	rows := map[int]int{}
	for _, lp := range p.Layers {
		for _, sh := range lp.Shards {
			if sh.Chip > maxChip {
				maxChip = sh.Chip
			}
			for _, t := range sh.Tiles {
				if r := t/w + 1; r > rows[sh.Chip] {
					rows[sh.Chip] = r
				}
			}
		}
	}
	return maxChip - p.Region.Chip + 1, rows[maxChip]
}

// CompileSet co-locates models on one fabric: disjoint regions are
// carved chip by chip (horizontal shelf strips, so small models share a
// chip and contend for its mesh spine and egress port), each model is
// compiled into its region, and the per-model Compileds — placements
// attached — are returned in input order.
func CompileSet(models []*bnn.Model, cfg arch.Config, design arch.Design, opts SetOptions) ([]*Compiled, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("compiler: CompileSet needs at least one model")
	}
	placer := opts.Placer
	if placer == nil {
		placer = GreedyPlacer{}
	}
	spec, err := design.Spec()
	if err != nil {
		return nil, fmt.Errorf("compiler: %w", err)
	}
	ecfg := spec.EffectiveArch(cfg)
	if err := ecfg.Validate(); err != nil {
		return nil, err
	}
	w := ecfg.MeshWidth()
	chipH := ceilDiv(ecfg.TilesPerNode, w)

	out := make([]*Compiled, 0, len(models))
	chip, row := 0, 0 // carving cursor
	for _, m := range models {
		demands, err := layerDemands(m, cfg, design)
		if err != nil {
			return nil, err
		}
		// Candidate regions, most local first: the rest of the current
		// chip, a fresh chip, then all remaining chips (sharded models).
		var candidates []Region
		if chip < ecfg.Nodes && row > 0 && row < chipH {
			candidates = append(candidates, Region{Chip: chip, Chips: 1, X0: 0, Y0: row, W: w, H: chipH - row})
		}
		fresh := chip
		if row > 0 {
			fresh = chip + 1
		}
		if fresh < ecfg.Nodes {
			candidates = append(candidates, Region{Chip: fresh, Chips: 1, X0: 0, Y0: 0, W: w, H: chipH})
			if ecfg.Nodes-fresh > 1 {
				candidates = append(candidates, Region{Chip: fresh, Chips: ecfg.Nodes - fresh, X0: 0, Y0: 0, W: w, H: chipH})
			}
		}
		var placed *Placement
		var region Region
		for _, cand := range candidates {
			p, err := placer.Place(demands, ecfg, cand)
			if err != nil {
				continue
			}
			// Shrink the region to the rows actually used so the next
			// model starts right below, then re-place for consistent
			// region-relative ids.
			chips, lastRows := usedExtent(p, ecfg)
			shrunk := cand
			shrunk.Chips = chips
			if chips == 1 {
				shrunk.H = lastRows - shrunk.Y0
			}
			if p, err = placer.Place(demands, ecfg, shrunk); err != nil {
				// The shrunk region must still fit; if packing is
				// order-sensitive fall back to the full candidate.
				p, err = placer.Place(demands, ecfg, cand)
				if err != nil {
					continue
				}
				shrunk = cand
			}
			placed, region = p, shrunk
			break
		}
		if placed == nil {
			return nil, fmt.Errorf("compiler: fabric exhausted placing %s (cursor chip %d row %d): %d models need more than %d chips of %d tiles",
				m.Name(), chip, row, len(models), ecfg.Nodes, ecfg.TilesPerNode)
		}
		c, err := CompileWith(m, cfg, design, Options{Placer: placer, Region: &region})
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		// Advance the cursor past the region.
		if region.Chips == 1 {
			chip, row = region.Chip, region.Y0+region.H
			if row >= chipH {
				chip, row = chip+1, 0
			}
		} else {
			chip, row = region.Chip+region.Chips, 0
		}
	}
	// Safety: regions must be pairwise disjoint (the carve guarantees
	// it; a placer walking outside its region would be a bug).
	owner := map[int]string{}
	for _, c := range out {
		for li := range c.Placement.Layers {
			for _, g := range c.Placement.GlobalTiles(li, ecfg) {
				if prev, taken := owner[g]; taken && prev != c.ModelName {
					return nil, fmt.Errorf("compiler: models %s and %s overlap on tile %d",
						prev, c.ModelName, g)
				}
				owner[g] = c.ModelName
			}
		}
	}
	return out, nil
}
