package compiler

import (
	"math"
	"strconv"

	"einsteinbarrier/internal/trace"
)

// Search-trajectory tracing. When SearchOptions.Trace carries a
// recorder, Place dumps every objective evaluation — warm starts and
// annealed candidates — as counter events on an "objective" track,
// with the evaluation index as the time axis. Emission happens after
// each round's parallel evaluation completes, in candidate order, so
// the dump is bit-identical at any Workers count (the same contract
// the returned placement keeps). Infeasible candidates score -Inf,
// which JSON cannot carry — they land as "infeasible" instants
// instead.
type searchTrace struct {
	r     *trace.Recorder
	track int32

	candNm, bestNm, infeasNm, acceptNm int32
	warmNm                             map[string]int32
}

// newSearchTrace registers the search's process; returns nil (all
// emitters no-op) when r is nil.
func newSearchTrace(r *trace.Recorder, model string) *searchTrace {
	if r == nil {
		return nil
	}
	t := &searchTrace{r: r, warmNm: map[string]int32{}}
	proc := r.AddProcess("placement search " + model)
	t.track = r.AddTrack(proc, "objective")
	t.candNm = r.Intern("candidate")
	t.bestNm = r.Intern("best")
	t.infeasNm = r.Intern("infeasible")
	t.acceptNm = r.Intern("accept")
	r.SetMeta("model", model)
	r.SetMeta("time_axis", "objective_evaluations")
	return t
}

// warm records one heuristic warm start's score (or its infeasibility).
func (t *searchTrace) warm(name string, step int, score float64) {
	if t == nil {
		return
	}
	nm, ok := t.warmNm[name]
	if !ok {
		nm = t.r.Intern("warm-start " + name)
		t.warmNm[name] = nm
	}
	if math.IsInf(score, 0) {
		t.r.Emit(trace.Event{Kind: trace.KindInstant, Track: t.track, Name: t.infeasNm,
			Seq: int64(step), Start: float64(step)})
		return
	}
	t.r.Emit(trace.Event{Kind: trace.KindCounter, Track: t.track, Name: nm,
		Seq: int64(step), Start: float64(step), A: score})
}

// candidate records one annealed candidate's evaluation; accepted
// candidates additionally get an instant marker.
func (t *searchTrace) candidate(step int, temp, score float64, valid, accepted bool) {
	if t == nil {
		return
	}
	if !valid {
		t.r.Emit(trace.Event{Kind: trace.KindInstant, Track: t.track, Name: t.infeasNm,
			Seq: int64(step), Start: float64(step), B: temp})
		return
	}
	t.r.Emit(trace.Event{Kind: trace.KindCounter, Track: t.track, Name: t.candNm,
		Seq: int64(step), Start: float64(step), A: score, B: temp})
	if accepted {
		t.r.Emit(trace.Event{Kind: trace.KindInstant, Track: t.track, Name: t.acceptNm,
			Seq: int64(step), Start: float64(step), A: score})
	}
}

// improved records a new incumbent best.
func (t *searchTrace) improved(step int, score float64) {
	if t == nil {
		return
	}
	t.r.Emit(trace.Event{Kind: trace.KindCounter, Track: t.track, Name: t.bestNm,
		Seq: int64(step), Start: float64(step), A: score})
}

// done stamps the outcome into the trace metadata.
func (t *searchTrace) done(st SearchStats) {
	if t == nil {
		return
	}
	t.r.SetMeta("best_from", st.BestFrom)
	t.r.SetMeta("steps", strconv.Itoa(st.Steps))
	t.r.SetMeta("rounds", strconv.Itoa(st.Rounds))
	t.r.SetMeta("accepted", strconv.Itoa(st.Accepted))
	if !math.IsInf(st.BestScore, 0) {
		t.r.SetMeta("best_score", strconv.FormatFloat(st.BestScore, 'g', -1, 64))
	}
}
