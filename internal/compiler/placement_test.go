package compiler

import (
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/isa"
)

func TestPlaceAndRewriteBasics(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "CNN-M")
	c, err := Compile(m, cfg, arch.TacitEPCM)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlaceAndRewrite(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Spans) == 0 {
		t.Fatal("no spans")
	}
	if err := c.Program.Validate(); err != nil {
		t.Fatalf("rewritten program invalid: %v", err)
	}
	// Every non-final SEND hop count must be a legal mesh distance.
	maxHops := 2 * (cfg.MeshWidth() - 1)
	for _, in := range c.Program {
		if in.Op == isa.OpSend && in.Hops > maxHops {
			t.Fatalf("SEND with %d hops exceeds mesh diameter %d", in.Hops, maxHops)
		}
	}
	// The final SEND (logits to host) must cross the chip boundary.
	var last isa.Instruction
	for _, in := range c.Program {
		if in.Op == isa.OpSend {
			last = in
		}
	}
	if last.ChipHops != 1 {
		t.Fatal("final SEND must egress to the host")
	}
}

func TestPlacementSpansConsistent(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "MLP-M")
	c, _ := Compile(m, cfg, arch.TacitEPCM)
	p, err := PlaceAndRewrite(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Spans {
		if s.Node < 0 || s.Node >= cfg.Nodes {
			t.Fatalf("%s: node %d out of range", s.Name, s.Node)
		}
		if s.Tile < 0 || s.Tile >= cfg.TilesPerNode {
			t.Fatalf("%s: tile %d out of range", s.Name, s.Tile)
		}
		if s.Tiles < 1 {
			t.Fatalf("%s: empty span", s.Name)
		}
	}
}

func TestPlacementLocalityBeatsWorstCase(t *testing.T) {
	// Linear allocation keeps consecutive layers close: the average
	// per-SEND hop count must be well below the mesh diameter.
	cfg := arch.DefaultConfig()
	m := mustModel(t, "CNN-S")
	c, _ := Compile(m, cfg, arch.TacitEPCM)
	p, err := PlaceAndRewrite(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sends := 0
	for _, in := range c.Program {
		if in.Op == isa.OpSend {
			sends++
		}
	}
	diameter := 2 * (cfg.MeshWidth() - 1)
	if avg := float64(p.TotalHops) / float64(sends); avg > float64(diameter)/2 {
		t.Fatalf("average hops %.1f too high for a local layout", avg)
	}
}

func TestPlacementAcrossDesigns(t *testing.T) {
	cfg := arch.DefaultConfig()
	for _, name := range bnn.ZooNames {
		m := mustModel(t, name)
		for _, d := range []arch.Design{arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier} {
			c, err := Compile(m, cfg, d)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := PlaceAndRewrite(c, cfg); err != nil {
				t.Fatalf("%s/%v: %v", name, d, err)
			}
		}
	}
}

func TestPlacementRejectsBadConfig(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "MLP-S")
	c, _ := Compile(m, cfg, arch.TacitEPCM)
	bad := cfg
	bad.Nodes = 0
	if _, err := PlaceAndRewrite(c, bad); err == nil {
		t.Fatal("expected config error")
	}
}
