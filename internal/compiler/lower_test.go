package compiler

import (
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
)

// TestLowerCompileMatchesCompileWith pins the hoist contract: splitting
// compilation into Lower (per-model prefix) + Compile (per-placement
// assembly) is byte-identical to the one-shot CompileWith, for every
// zoo network × design × placer.
func TestLowerCompileMatchesCompileWith(t *testing.T) {
	cfg := arch.DefaultConfig()
	for _, name := range bnn.ZooNames {
		m := mustModel(t, name)
		for _, d := range arch.Designs() {
			lw, err := Lower(m, cfg, d)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, d, err)
			}
			for _, placer := range []Placer{GreedyPlacer{}, MeshPlacer{}, ShardPlacer{}} {
				opts := Options{Placer: placer}
				want, err := CompileWith(m, cfg, d, opts)
				if err != nil {
					continue // placer doesn't fit this design; same error either way
				}
				got, err := lw.Compile(opts)
				if err != nil {
					t.Fatalf("%s/%v/%s: %v", name, d, placer.Name(), err)
				}
				if got.Program.String() != want.Program.String() {
					t.Fatalf("%s/%v/%s: hoisted program differs from fresh compile", name, d, placer.Name())
				}
				if got.VCoresUsed != want.VCoresUsed || got.WeightWrites != want.WeightWrites {
					t.Fatalf("%s/%v/%s: metadata differs", name, d, placer.Name())
				}
				if got.Placement.Fingerprint() != want.Placement.Fingerprint() {
					t.Fatalf("%s/%v/%s: placement differs", name, d, placer.Name())
				}
			}
		}
	}
}

// TestLoweredReuseIsPure: compiling MANY placements from one Lowered
// prefix must not cross-contaminate — exact placers mutate the layer
// programs (SEND rewrites, gather splices), so Compile must deep-copy.
// The shard corner case (TilesPerNode=4/Nodes=8 splits MLP-L across
// chips) splices extra gather SENDs, the strongest mutation.
func TestLoweredReuseIsPure(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.TilesPerNode = 4
	cfg.Nodes = 8
	m := mustModel(t, "MLP-L")
	lw, err := Lower(m, cfg, arch.EinsteinBarrier)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: shard (splices), greedy (no rewrite), shard again —
	// the two shard compiles and a fresh CompileWith must agree.
	first, err := lw.Compile(Options{Placer: ShardPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lw.Compile(Options{Placer: GreedyPlacer{}}); err != nil {
		t.Fatal(err)
	}
	second, err := lw.Compile(Options{Placer: ShardPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	if first.Program.String() != second.Program.String() {
		t.Fatal("repeated shard compiles from one Lowered diverge — layer programs were mutated in place")
	}
	fresh, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: ShardPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	if first.Program.String() != fresh.Program.String() {
		t.Fatal("hoisted shard compile differs from fresh CompileWith")
	}
}

// TestLoweredAccessors: the exposed prefix data is defensive-copied.
func TestLoweredAccessors(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "MLP-S")
	lw, err := Lower(m, cfg, arch.EinsteinBarrier)
	if err != nil {
		t.Fatal(err)
	}
	d := lw.Demands()
	if len(d) == 0 {
		t.Fatal("no demands")
	}
	d[0].VCores = -999
	if lw.Demands()[0].VCores == -999 {
		t.Fatal("Demands leaked internal state")
	}
	if lw.Config() != lw.cfg {
		t.Fatal("Config accessor mismatch")
	}
}
