package compiler

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"einsteinbarrier/internal/arch"
)

// fmtFingerprint is the reference implementation the strconv fast path
// must match byte for byte — the original fmt.Fprintf rendering.
func fmtFingerprint(p *Placement) string {
	var sb strings.Builder
	r := p.Region
	fmt.Fprintf(&sb, "r%d+%d:%d,%d,%dx%d", r.Chip, r.Chips, r.X0, r.Y0, r.W, r.H)
	if p.Exact {
		sb.WriteByte('!')
	}
	for _, lp := range p.Layers {
		sb.WriteByte('|')
		for si, sh := range lp.Shards {
			if si > 0 {
				sb.WriteByte('+')
			}
			fmt.Fprintf(&sb, "n%d@%d:", sh.Chip, sh.VCores)
			for ti, t := range sh.Tiles {
				if ti > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%d", t)
			}
		}
	}
	return sb.String()
}

// TestFingerprintFormatPinned: the cache key is a stability contract
// (evaluator memos and search caches key on it), so the fast rendering
// must reproduce the fmt-based format exactly — including multi-shard
// and multi-chip layouts.
func TestFingerprintFormatPinned(t *testing.T) {
	cfg := arch.DefaultConfig()
	for _, model := range []string{"CNN-S", "CNN-L", "MLP-L"} {
		for _, placer := range []Placer{GreedyPlacer{}, MeshPlacer{}, ShardPlacer{}} {
			m := mustModel(t, model)
			c, err := CompileWith(m, cfg, arch.EinsteinBarrier, Options{Placer: placer})
			if err != nil {
				t.Fatal(err)
			}
			got, want := c.Placement.Fingerprint(), fmtFingerprint(c.Placement)
			if got != want {
				t.Fatalf("%s/%s: fingerprint %q != reference %q", model, placer.Name(), got, want)
			}
		}
	}
	// Hand-built corner: empty shard tile list, zero-value region.
	p := &Placement{Layers: []LayerPlace{{Name: "x", Shards: []Shard{{Chip: 3, VCores: 7}}}}}
	if got, want := p.Fingerprint(), fmtFingerprint(p); got != want {
		t.Fatalf("corner fingerprint %q != reference %q", got, want)
	}
}

// countingEvaluator wraps hopEvaluator and counts objective computes —
// the probe-visible effect of the genotype memo.
type countingEvaluator struct {
	mu     sync.Mutex
	scores int
}

func (e *countingEvaluator) Score(c *Compiled) (float64, error) {
	e.mu.Lock()
	e.scores++
	e.mu.Unlock()
	return hopEvaluator{}.Score(c)
}

// memoEvaluator additionally implements CachedEvaluator over a
// fingerprint memo — the sim evaluators' shape, sim-free.
type memoEvaluator struct {
	countingEvaluator
	memo sync.Map // model/design/fingerprint → float64
}

func (e *memoEvaluator) Score(c *Compiled) (float64, error) {
	v, err := e.countingEvaluator.Score(c)
	if err == nil {
		e.memo.Store(c.ModelName+"/"+c.Design.String()+"/"+c.Placement.Fingerprint(), v)
	}
	return v, err
}

func (e *memoEvaluator) CachedScore(model string, design arch.Design, p *Placement) (float64, bool) {
	v, ok := e.memo.Load(model + "/" + design.String() + "/" + p.Fingerprint())
	if !ok {
		return 0, false
	}
	return v.(float64), true
}

// TestSearchCachingBitIdentical: the genotype memo and the
// CachedEvaluator fast path change how many times the objective runs,
// never what the search returns — placement, stats and trajectory are
// bit-identical to the uncached search, at any worker count.
func TestSearchCachingBitIdentical(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := mustModel(t, "CNN-S")
	region := FullFabric(cfg)

	place := func(ev Evaluator, workers int) (*Placement, SearchStats) {
		sp, err := NewSearchPlacer(m, cfg, arch.EinsteinBarrier, ev, SearchOptions{Steps: 96, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		p, err := sp.Place(sp.low.demands, cfg, region)
		if err != nil {
			t.Fatal(err)
		}
		return p, sp.Stats()
	}

	plain := &countingEvaluator{}
	wantP, wantSt := place(plain, 1)
	for _, workers := range []int{1, 4} {
		cached := &memoEvaluator{}
		gotP, gotSt := place(cached, workers)
		if gotP.Fingerprint() != wantP.Fingerprint() {
			t.Fatalf("workers=%d: cached search returned a different layout", workers)
		}
		if gotSt.Steps != wantSt.Steps || gotSt.Rounds != wantSt.Rounds ||
			gotSt.Accepted != wantSt.Accepted || gotSt.BestScore != wantSt.BestScore ||
			gotSt.BestFrom != wantSt.BestFrom || gotSt.Improved != wantSt.Improved {
			t.Fatalf("workers=%d: stats diverged: %+v vs %+v", workers, gotSt, wantSt)
		}
		// The caches must actually save work: the walk revisits layouts
		// (clamped border shifts alone guarantee repeats at this budget).
		if cached.scores >= plain.scores {
			t.Fatalf("workers=%d: cached evaluator computed %d ≥ uncached %d", workers, cached.scores, plain.scores)
		}
	}
	// The genotype memo alone (no CachedEvaluator) must also save work:
	// fewer objective computes than objective steps.
	if plain.scores >= wantSt.Steps {
		t.Fatalf("genotype memo saved nothing: %d computes for %d steps", plain.scores, wantSt.Steps)
	}
}
