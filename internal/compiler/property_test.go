package compiler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/isa"
	"einsteinbarrier/internal/tensor"
)

// randomMLP builds a random-width valid MLP model for property tests.
func randomMLP(rng *rand.Rand) *bnn.Model {
	in := 16 + rng.Intn(200)
	h1 := 8 + rng.Intn(300)
	h2 := 8 + rng.Intn(300)
	classes := 2 + rng.Intn(20)
	w0 := tensor.NewFloat(h1, in)
	wOut := tensor.NewFloat(classes, h2)
	return &bnn.Model{
		ModelName:  "random-mlp",
		InputShape: []int{in},
		Classes:    classes,
		Layers: []bnn.Layer{
			&bnn.DenseFP{LayerName: "fc0", W: w0, B: make([]float64, h1)},
			&bnn.Sign{LayerName: "sign"},
			&bnn.BinaryDense{LayerName: "bin0", W: bitops.NewMatrix(h2, h1), Thresh: make([]int, h2)},
			&bnn.DenseFP{LayerName: "out", W: wOut, B: make([]float64, classes)},
		},
	}
}

// TestCompileProperty: any valid random MLP compiles to a valid,
// HALT-terminated program on every design, with consistent allocation
// and the design-appropriate opcode mix.
func TestCompileProperty(t *testing.T) {
	cfg := arch.DefaultConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := randomMLP(rng)
		if model.Validate() != nil {
			return false
		}
		for _, d := range []arch.Design{arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier} {
			c, err := Compile(model, cfg, d)
			if err != nil {
				return false
			}
			if c.Program.Validate() != nil {
				return false
			}
			if len(c.Allocs) != len(model.Layers) || c.VCoresUsed < 1 {
				return false
			}
			// Opcode mix discipline.
			for _, in := range c.Program {
				switch {
				case in.Op == isa.OpMVM && d != arch.TacitEPCM:
					return false
				case in.Op == isa.OpMMM && d != arch.EinsteinBarrier:
					return false
				case in.Op == isa.OpRowStep && d != arch.BaselineEPCM:
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeCompiledProperty: compiled programs survive the binary
// codec byte-for-byte (comments aside).
func TestEncodeCompiledProperty(t *testing.T) {
	cfg := arch.DefaultConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := randomMLP(rng)
		c, err := Compile(model, cfg, arch.EinsteinBarrier)
		if err != nil {
			return false
		}
		decoded, err := isa.Decode(c.Program.Encode())
		if err != nil || len(decoded) != len(c.Program) {
			return false
		}
		for i := range decoded {
			want := c.Program[i]
			want.Comment = ""
			if decoded[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
