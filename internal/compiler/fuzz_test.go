package compiler

import (
	"testing"

	"einsteinbarrier/internal/arch"
)

// FuzzRegionRelTile: for any valid region and any in-range relative
// tile index, ResolveTile and RelTile must invert each other, and
// out-of-region coordinates must be rejected rather than aliased. The
// seeds are the PR 5 mesh/shard corner cases from
// TestRegionRelativeRoundTrip plus single-cell and full-fabric shapes.
func FuzzRegionRelTile(f *testing.F) {
	f.Add(0, 4, 0, 0, 4, 4, 0)   // full fabric
	f.Add(1, 2, 1, 2, 3, 2, 5)   // offset multi-chip rect
	f.Add(3, 1, 0, 0, 1, 1, 0)   // single cell on the last chip
	f.Add(0, 8, 0, 0, 2, 2, 17)  // chips beyond the config (invalid)
	f.Add(2, 1, 3, 3, 1, 1, 0)   // far corner
	f.Add(0, 1, 0, 0, 4, 1, 3)   // single row
	f.Fuzz(func(t *testing.T, chip, chips, x0, y0, w, h, rel int) {
		cfg := arch.DefaultConfig()
		r := Region{Chip: chip, Chips: chips, X0: x0, Y0: y0, W: w, H: h}
		if err := r.Validate(cfg); err != nil {
			return // invalid regions are out of contract
		}
		n := r.Chips * r.W * r.H
		if rel < 0 || rel >= n {
			if _, _, err := r.ResolveTile(rel, cfg); err == nil {
				t.Fatalf("region %v resolved out-of-range rel %d", r, rel)
			}
			return
		}
		// A valid region may overhang the bottom of a partial mesh; rel
		// ids landing on off-mesh cells must error, never alias.
		within := rel % (r.W * r.H)
		x := r.X0 + within%r.W
		y := r.Y0 + within/r.W
		offMesh := y*cfg.MeshWidth()+x >= cfg.TilesPerNode
		c, tile, err := r.ResolveTile(rel, cfg)
		if offMesh {
			if err == nil {
				t.Fatalf("region %v rel %d resolved an off-mesh cell (%d,%d)", r, rel, x, y)
			}
			return
		}
		if err != nil {
			t.Fatalf("region %v rel %d: %v", r, rel, err)
		}
		if c < r.Chip || c >= r.Chip+r.Chips {
			t.Fatalf("region %v rel %d resolved to chip %d outside the region", r, rel, c)
		}
		if tile < 0 || tile >= cfg.TilesPerNode {
			t.Fatalf("region %v rel %d resolved to tile %d outside the chip", r, rel, tile)
		}
		back, err := r.RelTile(c, tile, cfg)
		if err != nil {
			t.Fatalf("region %v: RelTile(%d,%d): %v", r, c, tile, err)
		}
		if back != rel {
			t.Fatalf("region %v: rel %d → (%d,%d) → %d", r, rel, c, tile, back)
		}
	})
}
