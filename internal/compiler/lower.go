package compiler

import (
	"fmt"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/isa"
	"einsteinbarrier/internal/noc"
)

// Lowered is the placement-independent prefix of a compilation: the
// per-layer ISA programs (before tile resolution), the layer demands,
// the VCore allocation and the weight-write count — everything that
// depends only on (model, config, design), never on where the layers
// land. The search placer compiles hundreds of candidate placements of
// ONE model, so this is computed once and replayed through Compile per
// candidate; CompileWith is Lower + Compile, byte-identical to the
// monolithic path (pinned by TestLoweredCompileByteIdentical).
type Lowered struct {
	// ModelName and Design echo the inputs.
	ModelName string
	Design    arch.Design

	cfg  arch.Config // effective architecture (spec hooks applied)
	mesh noc.Config

	// layerProgs are the per-layer instruction templates, each ending
	// with the layer's SYNC. Exact placements deep-copy them before the
	// placement pass rewrites SENDs; inexact placements share them.
	layerProgs []isa.Program
	demands    []LayerDemand
	allocs     []LayerAlloc

	vcoresUsed   int
	weightWrites int64
}

// Config returns the effective architecture the model was lowered for.
func (lw *Lowered) Config() arch.Config { return lw.cfg }

// Demands returns a copy of the per-layer resource demands (the placer
// input).
func (lw *Lowered) Demands() []LayerDemand {
	return append([]LayerDemand{}, lw.demands...)
}

// Lower runs the placement-independent compilation prefix: it resolves
// the design spec, validates the model, and lowers every layer to its
// instruction template, demand and allocation.
func Lower(model *bnn.Model, cfg arch.Config, design arch.Design) (*Lowered, error) {
	spec, err := design.Spec()
	if err != nil {
		return nil, fmt.Errorf("compiler: %w", err)
	}
	cfg = spec.EffectiveArch(cfg)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	mesh := noc.DefaultConfig(cfg.MeshWidth())
	avgHops := int(mesh.AverageHops() + 0.5)
	k := cfg.EffectiveK(design)

	lw := &Lowered{ModelName: model.Name(), Design: design, cfg: cfg, mesh: mesh}
	next := 0 // next free flat VCore index
	alloc := func(n int) int {
		first := next
		next += n
		return first
	}
	for _, lc := range model.Costs() {
		la := LayerAlloc{Name: lc.Name, Kind: lc.Kind}
		var ins isa.Program
		switch lc.Kind {
		case "binary":
			ins, la, err = lowerBinary(lc, cfg, spec, k, avgHops)
			if err != nil {
				return nil, fmt.Errorf("compiler: %s/%s: %w", model.Name(), lc.Name, err)
			}
			la.FirstVCore = alloc(la.VCores)
			lw.weightWrites += int64(2 * lc.Work.N * lc.Work.M)
		case "fp":
			ins, la, err = lowerFP(lc, cfg, spec, k, avgHops)
			if err != nil {
				return nil, fmt.Errorf("compiler: %s/%s: %w", model.Name(), lc.Name, err)
			}
			la.FirstVCore = alloc(la.VCores)
			// Multi-bit weights: one cell per stored slice — InputBits
			// slices on binary cells, fewer on multi-level cells.
			lw.weightWrites += lc.MACs * int64(weightSlices(cfg, spec))
		case "shape":
			// Reshapes, pooling and binarization fuse into the producing
			// layer's output path (OR-pooling and sign are single gates
			// behind the threshold units) — no instructions, no traffic.
			lw.allocs = append(lw.allocs, la)
			continue
		default:
			return nil, fmt.Errorf("compiler: unknown layer kind %q", lc.Kind)
		}
		lw.layerProgs = append(lw.layerProgs, append(ins, isa.Instruction{Op: isa.OpSync, Comment: lc.Name}))
		lw.allocs = append(lw.allocs, la)
		lw.demands = append(lw.demands, demandOf(lc, la.VCores))
	}
	lw.vcoresUsed = next
	return lw, nil
}

// Compile runs the placement-dependent suffix: place the lowered
// layers, rewrite SENDs for layout-exact placements, and assemble the
// program. It never mutates the Lowered state, so one Lowered serves
// any number of candidate placements.
func (lw *Lowered) Compile(opts Options) (*Compiled, error) {
	placer := opts.Placer
	if placer == nil {
		placer = GreedyPlacer{}
	}
	region := FullFabric(lw.cfg)
	if opts.Region != nil {
		region = *opts.Region
	}
	if err := region.Validate(lw.cfg); err != nil {
		return nil, err
	}
	pl, err := placer.Place(lw.demands, lw.cfg, region)
	if err != nil {
		return nil, fmt.Errorf("compiler: %s: %w", lw.ModelName, err)
	}
	if err := pl.Validate(lw.cfg); err != nil {
		return nil, err
	}
	if len(pl.Layers) != len(lw.layerProgs) {
		return nil, fmt.Errorf("compiler: placer %s placed %d layers, model has %d", placer.Name(), len(pl.Layers), len(lw.layerProgs))
	}
	layerProgs := lw.layerProgs
	if pl.Exact {
		// The placement pass rewrites SEND operands in place and splices
		// gather SENDs, so exact placements work on a deep copy of the
		// templates.
		layerProgs = make([]isa.Program, len(lw.layerProgs))
		for i, lp := range lw.layerProgs {
			layerProgs[i] = append(isa.Program{}, lp...)
		}
		if err := applyPlacement(layerProgs, lw.demands, pl, lw.cfg, lw.mesh); err != nil {
			return nil, err
		}
	}

	var prog isa.Program
	for _, lp := range layerProgs {
		prog = append(prog, lp...)
	}
	prog = append(prog, isa.Instruction{Op: isa.OpHalt})
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if lw.vcoresUsed > lw.cfg.TotalVCores() {
		return nil, fmt.Errorf("compiler: %s needs %d VCores, architecture has %d",
			lw.ModelName, lw.vcoresUsed, lw.cfg.TotalVCores())
	}
	return &Compiled{
		ModelName:    lw.ModelName,
		Design:       lw.Design,
		Program:      prog,
		Allocs:       append([]LayerAlloc{}, lw.allocs...),
		VCoresUsed:   lw.vcoresUsed,
		WeightWrites: lw.weightWrites,
		Placement:    pl,
	}, nil
}
