package compiler

import (
	"fmt"
	"strconv"
	"strings"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/core"
	"einsteinbarrier/internal/noc"
)

// Placement IR. The seed compiler lowered one model onto one chip with
// a greedy sequential VCore counter; the types here make the physical
// layout an explicit, inspectable artifact instead. A Region is a
// rectangular sub-grid of the tile mesh (optionally repeated across
// consecutive chips); a Placement assigns every VCore-owning layer a
// set of Shards (tile footprints) inside its region; a Placer is the
// pluggable strategy that produces the assignment. CompileWith threads
// a placement through lowering, CompileSet carves disjoint regions so
// several models co-locate on one fabric, and the pipeline engine
// (internal/sim) resolves region-relative tiles back to physical ones
// at simulation time.

// Region is a rectangular tile sub-grid: the X0..X0+W-1 × Y0..Y0+H-1
// rectangle of the per-chip mesh, repeated on Chips consecutive chips
// starting at Chip. Single-chip regions have Chips == 1; only sharded
// placements span chips.
type Region struct {
	Chip, Chips  int
	X0, Y0, W, H int
}

// FullFabric is the region covering every tile of every chip — the
// default placement target of a single-model compile.
func FullFabric(cfg arch.Config) Region {
	w := cfg.MeshWidth()
	return Region{Chip: 0, Chips: cfg.Nodes, X0: 0, Y0: 0, W: w, H: ceilDiv(cfg.TilesPerNode, w)}
}

// Validate checks the region against the fabric geometry.
func (r Region) Validate(cfg arch.Config) error {
	w := cfg.MeshWidth()
	switch {
	case r.Chips < 1 || r.Chip < 0 || r.Chip+r.Chips > cfg.Nodes:
		return fmt.Errorf("compiler: region chips [%d,%d) outside fabric of %d", r.Chip, r.Chip+r.Chips, cfg.Nodes)
	case r.W < 1 || r.H < 1 || r.X0 < 0 || r.Y0 < 0 || r.X0+r.W > w:
		return fmt.Errorf("compiler: region rect %+v outside %d-wide mesh", r, w)
	case r.Y0*w+r.X0 >= cfg.TilesPerNode:
		return fmt.Errorf("compiler: region origin (%d,%d) outside the %d tiles of a chip", r.X0, r.Y0, cfg.TilesPerNode)
	}
	return nil
}

// TileCount is the number of valid tiles the region holds across all
// its chips (rows that fall off a non-square mesh don't count).
func (r Region) TileCount(cfg arch.Config) int {
	w := cfg.MeshWidth()
	per := 0
	for y := r.Y0; y < r.Y0+r.H; y++ {
		for x := r.X0; x < r.X0+r.W; x++ {
			if y*w+x < cfg.TilesPerNode {
				per++
			}
		}
	}
	return per * r.Chips
}

// RelTile maps a (chip, node-local tile) pair to the region-relative
// tile id the ISA's SEND Src/Dst operands carry (0-based; the operands
// store 1+id so that 0 stays "unplaced").
func (r Region) RelTile(chip, tile int, cfg arch.Config) (int, error) {
	w := cfg.MeshWidth()
	x, y := tile%w, tile/w
	if chip < r.Chip || chip >= r.Chip+r.Chips ||
		x < r.X0 || x >= r.X0+r.W || y < r.Y0 || y >= r.Y0+r.H {
		return 0, fmt.Errorf("compiler: tile n%d:%d outside region %+v", chip, tile, r)
	}
	return (chip-r.Chip)*(r.W*r.H) + (y-r.Y0)*r.W + (x - r.X0), nil
}

// ResolveTile inverts RelTile: region-relative id → (chip, node-local
// tile) — how a consumer of a region-relative program (the SEND
// src=/dst= operands) maps tile ids back to physical tiles. The
// simulator schedules from Compiled.Placement directly, so this is the
// inspection/tooling path, exercised by the round-trip tests.
func (r Region) ResolveTile(rel int, cfg arch.Config) (chip, tile int, err error) {
	if rel < 0 || rel >= r.Chips*r.W*r.H {
		return 0, 0, fmt.Errorf("compiler: region-relative tile %d outside region %+v", rel, r)
	}
	per := r.W * r.H
	chip = r.Chip + rel/per
	rel %= per
	x, y := r.X0+rel%r.W, r.Y0+rel/r.W
	tile = y*cfg.MeshWidth() + x
	if tile >= cfg.TilesPerNode {
		return 0, 0, fmt.Errorf("compiler: region-relative tile resolves to %d, chip has %d tiles", tile, cfg.TilesPerNode)
	}
	return chip, tile, nil
}

// Overlaps reports whether two regions share any tile.
func (r Region) Overlaps(o Region) bool {
	chips := r.Chip < o.Chip+o.Chips && o.Chip < r.Chip+r.Chips
	xs := r.X0 < o.X0+o.W && o.X0 < r.X0+r.W
	ys := r.Y0 < o.Y0+o.H && o.Y0 < r.Y0+r.H
	return chips && xs && ys
}

// String renders "n0-3 [0,0 4x4]" style.
func (r Region) String() string {
	chips := fmt.Sprintf("n%d", r.Chip)
	if r.Chips > 1 {
		chips = fmt.Sprintf("n%d-%d", r.Chip, r.Chip+r.Chips-1)
	}
	return fmt.Sprintf("%s [%d,%d %dx%d]", chips, r.X0, r.Y0, r.W, r.H)
}

// Shard is one contiguous piece of a layer's tile footprint on one
// chip. Tiles holds node-local tile ids in layout order; the first is
// the shard's anchor (where partial results collect and the output
// transfer originates). A layer has one shard unless the ShardPlacer
// had to split it across chips.
type Shard struct {
	Chip   int
	Tiles  []int
	VCores int
}

// LayerPlace is the placed footprint of one VCore-owning layer.
type LayerPlace struct {
	Name   string
	Shards []Shard
}

// Anchor returns the primary shard's anchor (chip, node-local tile).
func (lp LayerPlace) Anchor() (chip, tile int) {
	return lp.Shards[0].Chip, lp.Shards[0].Tiles[0]
}

// Placement maps a model's layers onto a region of the tile fabric.
type Placement struct {
	// Placer names the strategy that produced the layout.
	Placer string
	// Region is the fabric slice the model owns; co-located models have
	// disjoint regions.
	Region Region
	// Exact reports whether the program's SEND hop counts were rewritten
	// from this layout (MeshPlacer, ShardPlacer). The greedy placer
	// keeps the allocator's average-hop estimate so its programs stay
	// bit-identical to the legacy compiler; its placement still drives
	// the pipeline engine's contention model.
	Exact bool
	// Layers has one entry per VCore-owning layer, in program order.
	Layers []LayerPlace
}

// Validate checks structural invariants: shards inside the region, no
// empty shards.
func (p *Placement) Validate(cfg arch.Config) error {
	if err := p.Region.Validate(cfg); err != nil {
		return err
	}
	for _, lp := range p.Layers {
		if len(lp.Shards) == 0 {
			return fmt.Errorf("compiler: layer %s placed with no shards", lp.Name)
		}
		for _, sh := range lp.Shards {
			if len(sh.Tiles) == 0 {
				return fmt.Errorf("compiler: layer %s has an empty shard", lp.Name)
			}
			for _, t := range sh.Tiles {
				if _, err := p.Region.RelTile(sh.Chip, t, cfg); err != nil {
					return fmt.Errorf("compiler: layer %s: %w", lp.Name, err)
				}
			}
		}
	}
	return nil
}

// GlobalTiles returns layer li's footprint as global tile ids
// (chip·TilesPerNode + local), deduplicated and in layout order — the
// contention resources the pipeline engine charges.
func (p *Placement) GlobalTiles(li int, cfg arch.Config) []int {
	var out []int
	seen := map[int]bool{}
	for _, sh := range p.Layers[li].Shards {
		for _, t := range sh.Tiles {
			g := sh.Chip*cfg.TilesPerNode + t
			if !seen[g] {
				seen[g] = true
				out = append(out, g)
			}
		}
	}
	return out
}

// TotalTiles is the distinct tile count the placement occupies.
func (p *Placement) TotalTiles(cfg arch.Config) int {
	seen := map[int]bool{}
	for li := range p.Layers {
		for _, g := range p.GlobalTiles(li, cfg) {
			seen[g] = true
		}
	}
	return len(seen)
}

// Fingerprint returns the canonical cache key of the layout: region,
// exactness, and every layer's shard assignment (chip, VCores, tiles)
// in program order. Two placements with equal fingerprints compile to
// identical programs for the same Lowered model, so engine-priced
// evaluations can be memoized on it (sim.PlacementEvaluator — the
// serve.Pricer batch-size memoization pattern generalized to layouts).
// The placer name is deliberately excluded: a mesh layout replayed by
// the search placer is the same physical layout.
func (p *Placement) Fingerprint() string {
	// Fingerprinting runs once per candidate inside placement search —
	// assembled with strconv appends into one buffer (no fmt verbs, one
	// final allocation). The format is pinned byte-for-byte by
	// TestFingerprintFormatPinned.
	r := p.Region
	n := 24
	for _, lp := range p.Layers {
		n += 1 + len(lp.Shards) * 8
		for _, sh := range lp.Shards {
			n += 4 * len(sh.Tiles)
		}
	}
	buf := make([]byte, 0, n)
	buf = append(buf, 'r')
	buf = strconv.AppendInt(buf, int64(r.Chip), 10)
	buf = append(buf, '+')
	buf = strconv.AppendInt(buf, int64(r.Chips), 10)
	buf = append(buf, ':')
	buf = strconv.AppendInt(buf, int64(r.X0), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(r.Y0), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(r.W), 10)
	buf = append(buf, 'x')
	buf = strconv.AppendInt(buf, int64(r.H), 10)
	if p.Exact {
		buf = append(buf, '!')
	}
	for _, lp := range p.Layers {
		buf = append(buf, '|')
		for si, sh := range lp.Shards {
			if si > 0 {
				buf = append(buf, '+')
			}
			buf = append(buf, 'n')
			buf = strconv.AppendInt(buf, int64(sh.Chip), 10)
			buf = append(buf, '@')
			buf = strconv.AppendInt(buf, int64(sh.VCores), 10)
			buf = append(buf, ':')
			for ti, t := range sh.Tiles {
				if ti > 0 {
					buf = append(buf, ',')
				}
				buf = strconv.AppendInt(buf, int64(t), 10)
			}
		}
	}
	return string(buf)
}

// String renders one line per layer.
func (p *Placement) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "placement %s region %s exact=%v\n", p.Placer, p.Region, p.Exact)
	for _, lp := range p.Layers {
		fmt.Fprintf(&sb, "  %-14s", lp.Name)
		for _, sh := range lp.Shards {
			fmt.Fprintf(&sb, " n%d:%v(%d vcores)", sh.Chip, sh.Tiles, sh.VCores)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LayerDemand is one VCore-owning layer's resource demand, the placer's
// input.
type LayerDemand struct {
	Name   string
	VCores int
	// Bytes is the layer's output activation traffic (SEND sizing).
	Bytes int64
	// PartialBytes is the cross-shard gather traffic when the layer is
	// split: 16-bit partial sums instead of 1-bit activations.
	PartialBytes int64
}

// Placer assigns layers to tiles inside a region. Implementations must
// be deterministic: same demands, same config, same region, same
// placement.
type Placer interface {
	// Name is the registry/CLI identifier.
	Name() string
	// Exact reports whether programs placed by this placer carry
	// layout-exact SEND hop counts (vs the allocator's average-hop
	// estimate).
	Exact() bool
	// Place lays the layers out. Layers arrive in program order.
	Place(layers []LayerDemand, cfg arch.Config, region Region) (*Placement, error)
}

// ParsePlacer resolves a CLI name. The search placer cannot be built
// from a bare name — it is bound to one model and an engine-backed
// evaluator — so "search" gets a pointer to NewSearchPlacer instead of
// the generic unknown-placer error.
func ParsePlacer(name string) (Placer, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "greedy":
		return GreedyPlacer{}, nil
	case "mesh":
		return MeshPlacer{}, nil
	case "shard":
		return ShardPlacer{}, nil
	case "search":
		return nil, fmt.Errorf("compiler: the search placer is model-bound — construct it with NewSearchPlacer and an engine evaluator (the CLIs wire -placer search through eval/sim)")
	}
	return nil, fmt.Errorf("compiler: unknown placer %q (have %s)", name, strings.Join(PlacerNames, ", "))
}

// PlacerNames lists the built-in placers (heuristics plus the
// annealing search placer, which needs NewSearchPlacer).
var PlacerNames = []string{"greedy", "mesh", "shard", "search"}

// HeuristicPlacerNames lists the one-shot placers ParsePlacer can build
// from a bare name — the search placer's warm starts.
var HeuristicPlacerNames = []string{"greedy", "mesh", "shard"}

// vcoresPerTileOf returns the VCore capacity of one tile.
func vcoresPerTileOf(cfg arch.Config) int { return cfg.ECoresPerTile * cfg.VCoresPerECore }

// --- greedy first-fit ----------------------------------------------------

// GreedyPlacer is the seed compiler's layout: a sequential VCore
// counter over the region's tiles in row-major order, consecutive
// layers packed back to back (and sharing boundary tiles). On the full
// fabric it reproduces the legacy flat allocation exactly — programs,
// allocs and Fig. 7/8 metrics are bit-identical to the pre-placement
// compiler, pinned by the golden tests.
type GreedyPlacer struct{}

// Name implements Placer.
func (GreedyPlacer) Name() string { return "greedy" }

// Exact implements Placer: greedy programs keep the average-hop
// estimate.
func (GreedyPlacer) Exact() bool { return false }

// regionTileOrder lists the region's valid tiles in allocation order:
// chip by chip, row-major within the rectangle.
func regionTileOrder(r Region, cfg arch.Config) [][2]int {
	w := cfg.MeshWidth()
	var out [][2]int
	for c := r.Chip; c < r.Chip+r.Chips; c++ {
		for y := r.Y0; y < r.Y0+r.H; y++ {
			for x := r.X0; x < r.X0+r.W; x++ {
				if t := y*w + x; t < cfg.TilesPerNode {
					out = append(out, [2]int{c, t})
				}
			}
		}
	}
	return out
}

// Place implements Placer.
func (GreedyPlacer) Place(layers []LayerDemand, cfg arch.Config, region Region) (*Placement, error) {
	order := regionTileOrder(region, cfg)
	per := vcoresPerTileOf(cfg)
	capacity := len(order) * per
	p := &Placement{Placer: "greedy", Region: region}
	next := 0
	for _, ld := range layers {
		first := next
		next += ld.VCores
		if next > capacity {
			return nil, fmt.Errorf("compiler: greedy placement needs %d VCores, region %s has %d", next, region, capacity)
		}
		firstTile := first / per
		lastTile := firstTile
		if ld.VCores > 0 {
			lastTile = (first + ld.VCores - 1) / per
		}
		// One shard per chip the span touches, tiles in allocation order.
		var shards []Shard
		for ti := firstTile; ti <= lastTile; ti++ {
			chip, tile := order[ti][0], order[ti][1]
			if n := len(shards); n > 0 && shards[n-1].Chip == chip {
				shards[n-1].Tiles = append(shards[n-1].Tiles, tile)
			} else {
				shards = append(shards, Shard{Chip: chip, Tiles: []int{tile}})
			}
		}
		shards[0].VCores = ld.VCores
		p.Layers = append(p.Layers, LayerPlace{Name: ld.Name, Shards: shards})
	}
	return p, nil
}

// --- locality-aware mesh packing -----------------------------------------

// MeshPlacer packs each layer's tiles into a compact sub-rectangle
// (core.CompactRect) and shelf-packs the rectangles through the region,
// giving every layer a private near-square footprint. Versus greedy
// this trades tile density for two wins the pipeline engine can
// measure: no tile sharing between stages (stages pipeline instead of
// mutually excluding) and shorter, less-overlapping XY routes (lower
// LinkWaitNs). Programs carry layout-exact SEND hops.
type MeshPlacer struct{}

// Name implements Placer.
func (MeshPlacer) Name() string { return "mesh" }

// Exact implements Placer.
func (MeshPlacer) Exact() bool { return true }

// Place implements Placer.
func (MeshPlacer) Place(layers []LayerDemand, cfg arch.Config, region Region) (*Placement, error) {
	p, err := shelfPlace("mesh", layers, cfg, region, false)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// --- cross-chip sharding -------------------------------------------------

// ShardPlacer is MeshPlacer plus chip splitting: a layer whose
// footprint exceeds the tiles remaining on the current chip is split
// into per-chip shards, and the compiler emits inter-chip gather SENDs
// (partial sums travel ChipDistance board links to the primary shard).
// This is how models bigger than one chip — or co-located into
// chip-fraction regions — keep compiling instead of erroring.
type ShardPlacer struct{}

// Name implements Placer.
func (ShardPlacer) Name() string { return "shard" }

// Exact implements Placer.
func (ShardPlacer) Exact() bool { return true }

// Place implements Placer.
func (ShardPlacer) Place(layers []LayerDemand, cfg arch.Config, region Region) (*Placement, error) {
	return shelfPlace("shard", layers, cfg, region, true)
}

// shelfPlace is the shared rectangle packer: layers become compact
// rects laid left-to-right on shelves, shelves stack down the region,
// full regions spill to the next chip. With shard=false a layer must
// fit one chip; with shard=true it splits at chip boundaries.
func shelfPlace(name string, layers []LayerDemand, cfg arch.Config, region Region, shard bool) (*Placement, error) {
	if err := region.Validate(cfg); err != nil {
		return nil, err
	}
	per := vcoresPerTileOf(cfg)
	w := cfg.MeshWidth()
	p := &Placement{Placer: name, Region: region, Exact: true}
	chip := 0      // region-relative chip index
	shelfY := 0    // top row of the current shelf, region-relative
	shelfX := 0    // next free column on the shelf
	shelfH := 0    // height of the current shelf
	chipTiles := func(c int) bool { return c < region.Chips }
	// tilesOf collects the row-major tiles of a rect at (x0,y0), w0×h0,
	// clipped to `take` tiles (the rect may over-cover the demand).
	tilesOf := func(c, x0, y0, w0, h0, take int) (Shard, error) {
		sh := Shard{Chip: region.Chip + c}
		for y := y0; y < y0+h0 && take > 0; y++ {
			for x := x0; x < x0+w0 && take > 0; x++ {
				t := (region.Y0+y)*w + region.X0 + x
				if t >= cfg.TilesPerNode {
					return sh, fmt.Errorf("compiler: %s placement walks off the %d-tile chip", name, cfg.TilesPerNode)
				}
				sh.Tiles = append(sh.Tiles, t)
				take--
			}
		}
		return sh, nil
	}
	for _, ld := range layers {
		tiles := ceilDiv(max(ld.VCores, 1), per)
		var shards []Shard
		remaining := tiles
		vcLeft := ld.VCores
		for remaining > 0 {
			if !chipTiles(chip) {
				return nil, fmt.Errorf("compiler: %s placement: layer %s needs %d more tiles, region %s exhausted",
					name, ld.Name, remaining, region)
			}
			rw, rh := core.CompactRect(remaining, region.W)
			// Start a new shelf if the rect does not fit beside the
			// previous one.
			if shelfX+rw > region.W || rh > region.H-shelfY && shelfX > 0 {
				shelfY += shelfH
				shelfX, shelfH = 0, 0
			}
			rowsLeft := region.H - shelfY
			if rowsLeft <= 0 {
				chip, shelfY, shelfX, shelfH = chip+1, 0, 0, 0
				continue
			}
			if rh > rowsLeft {
				if !shard {
					if shelfY == 0 && shelfX == 0 {
						return nil, fmt.Errorf("compiler: layer %s needs %d tiles, one chip of region %s holds %d (use the shard placer)",
							ld.Name, tiles, region, region.W*region.H)
					}
					// Retry on a fresh chip before giving up.
					chip, shelfY, shelfX, shelfH = chip+1, 0, 0, 0
					continue
				}
				rh = rowsLeft
			}
			take := min(remaining, rw*rh)
			sh, err := tilesOf(chip, shelfX, shelfY, rw, rh, take)
			if err != nil {
				return nil, err
			}
			vc := min(vcLeft, take*per)
			sh.VCores = vc
			vcLeft -= vc
			shards = append(shards, sh)
			remaining -= take
			shelfX += rw
			shelfH = max(shelfH, rh)
			if remaining > 0 {
				// The split continues on the next chip.
				chip, shelfY, shelfX, shelfH = chip+1, 0, 0, 0
			}
		}
		// The primary shard carries any rounding remainder so VCores sum
		// exactly.
		shards[0].VCores += vcLeft
		p.Layers = append(p.Layers, LayerPlace{Name: ld.Name, Shards: shards})
	}
	return p, nil
}

// --- placement-aware routing ---------------------------------------------

// routeHops prices one placed transfer: XY hops between tiles on one
// chip; cross-chip transfers drain through the egress corner, cross
// ChipDistance board links, and fan out from the ingress corner. The
// compiler stamps these on SENDs of layout-exact placements, and the
// pipeline engine uses the same model for link occupancy.
func routeHops(mesh noc.Config, cfg arch.Config, srcChip, srcTile, dstChip, dstTile int) (hops, chipHops int, err error) {
	if srcChip == dstChip {
		h, err := mesh.Hops(srcTile, dstTile)
		return h, 0, err
	}
	out, err := mesh.Hops(srcTile, mesh.EgressTile())
	if err != nil {
		return 0, 0, err
	}
	in, err := mesh.Hops(mesh.EgressTile(), dstTile)
	if err != nil {
		return 0, 0, err
	}
	return out + in, mesh.ChipDistance(srcChip, dstChip), nil
}

