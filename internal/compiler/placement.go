package compiler

import (
	"fmt"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/isa"
	"einsteinbarrier/internal/noc"
)

// Legacy hop rewriting. Compile allocates VCores linearly and prices
// every SEND at the mesh's *average* hop distance. This pass derives
// the actual tile of each layer from its allocation, rewrites every
// SEND with the real XY-routed hop count between producer and consumer
// tiles (plus chip-to-chip hops when the allocation spills across
// nodes), and reports the result for inspection. It predates the
// placement IR (placer.go): layout-exact placers stamp these hops at
// compile time, so this pass is only useful on greedy-placed programs,
// where it *tightens* the average-hop estimate after the fact.

// TileSpan is the tile footprint of one layer.
type TileSpan struct {
	Name string
	// Node and Tile of the layer's first VCore; Tiles is how many tiles
	// the layer spans.
	Node, Tile, Tiles int
}

// PlacementReport summarizes a hop rewrite.
type PlacementReport struct {
	Spans []TileSpan
	// TotalHops is the sum over SEND instructions after rewriting.
	TotalHops int
	// ChipCrossings counts node-boundary transfers.
	ChipCrossings int
}

// vcoresPerTile returns the VCore capacity of one tile.
func vcoresPerTile(cfg arch.Config) int {
	return cfg.ECoresPerTile * cfg.VCoresPerECore
}

// spanOf computes a layer's tile footprint from its allocation.
func spanOf(a LayerAlloc, cfg arch.Config) TileSpan {
	per := vcoresPerTile(cfg)
	firstTileGlobal := a.FirstVCore / per
	lastTileGlobal := firstTileGlobal
	if a.VCores > 0 {
		lastTileGlobal = (a.FirstVCore + a.VCores - 1) / per
	}
	return TileSpan{
		Name:  a.Name,
		Node:  firstTileGlobal / cfg.TilesPerNode,
		Tile:  firstTileGlobal % cfg.TilesPerNode,
		Tiles: lastTileGlobal - firstTileGlobal + 1,
	}
}

// PlaceAndRewrite computes the placement implied by the compilation's
// allocation and rewrites the program's SEND hop counts in place.
func PlaceAndRewrite(c *Compiled, cfg arch.Config) (*PlacementReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mesh := noc.DefaultConfig(cfg.MeshWidth())
	p := &PlacementReport{}
	// Spans in program order, for layers that own VCores.
	bySendOrder := make([]TileSpan, 0, len(c.Allocs))
	for _, a := range c.Allocs {
		if a.Kind == "shape" {
			continue
		}
		span := spanOf(a, cfg)
		p.Spans = append(p.Spans, span)
		bySendOrder = append(bySendOrder, span)
	}
	// Rewrite SENDs: the i-th SEND moves activations from layer i to
	// layer i+1 (the last SEND delivers the logits to the host: one
	// chip hop, no mesh hops).
	sendIdx := 0
	for idx := range c.Program {
		in := &c.Program[idx]
		if in.Op != isa.OpSend {
			continue
		}
		if sendIdx >= len(bySendOrder) {
			return nil, fmt.Errorf("compiler: more SENDs than layers")
		}
		src := bySendOrder[sendIdx]
		if sendIdx+1 < len(bySendOrder) {
			dst := bySendOrder[sendIdx+1]
			hops, err := mesh.Hops(src.Tile, dst.Tile)
			if err != nil {
				return nil, err
			}
			in.Hops = hops
			if src.Node != dst.Node {
				in.ChipHops = 1
				p.ChipCrossings++
			} else {
				in.ChipHops = 0
			}
		} else {
			in.Hops = 0
			in.ChipHops = 1 // egress to the host memory controller
			p.ChipCrossings++
		}
		p.TotalHops += in.Hops
		sendIdx++
	}
	if sendIdx != len(bySendOrder) {
		return nil, fmt.Errorf("compiler: %d SENDs for %d placed layers", sendIdx, len(bySendOrder))
	}
	return p, nil
}
