// Package isa defines the instruction set of the EinsteinBarrier
// accelerator. It extends a PUMA-style spatial ISA (Ankit et al.,
// ASPLOS 2019) with the paper's MMM instruction: a single crossbar
// activation that processes K wavelength-multiplexed input vectors
// (§IV, "EinsteinBarrier extends the ISA ... to support multiple
// simultaneous VMMs, called Matrix-Matrix-Multiplication").
//
// Instructions are macro-ops: one instruction describes a whole
// layer-step (e.g. "fire these 12 tiles, repeated for 1024 positions")
// together with the peripheral event counts the hardware performs per
// repeat. The simulator (internal/sim) prices these events with the
// cost tables in internal/energy.
package isa

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Opcode enumerates the instruction kinds.
type Opcode uint8

const (
	// OpNop does nothing (padding / alignment).
	OpNop Opcode = iota
	// OpMVM fires Tiles crossbars in parallel for one analog VMM
	// (TacitMap step), Repeat times.
	OpMVM
	// OpMMM fires Tiles oPCM crossbars with K wavelengths (WDM batch),
	// Repeat times. EinsteinBarrier's ISA extension.
	OpMMM
	// OpRowStep performs Count sequential word-line activations of a
	// 2T2R array with PCSA sensing (CustBinaryMap step), Repeat times.
	OpRowStep
	// OpFPMVM is a bit-streamed full-precision VMM: Bits sequential
	// binary VMMs with shift-and-add, over Tiles crossbars, Repeat times.
	OpFPMVM
	// OpAdd performs Count digital partial-sum additions.
	OpAdd
	// OpPopc performs Count digital popcount-tree operations.
	OpPopc
	// OpThresh performs Count threshold/sign activations.
	OpThresh
	// OpSend moves Bytes of activations over Hops mesh hops (and
	// ChipHops chip-to-chip hops).
	OpSend
	// OpSync is a layer barrier carrying the fixed per-layer control
	// overhead (instruction dispatch, operand steering, buffer drain).
	OpSync
	// OpHalt ends the program.
	OpHalt
)

var opNames = map[Opcode]string{
	OpNop: "NOP", OpMVM: "MVM", OpMMM: "MMM", OpRowStep: "ROWSTEP",
	OpFPMVM: "FPMVM", OpAdd: "ADD", OpPopc: "POPC", OpThresh: "THRESH",
	OpSend: "SEND", OpSync: "SYNC", OpHalt: "HALT",
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

// String implements fmt.Stringer.
func (o Opcode) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// Instruction is one macro-op. Zero-valued fields are legal where the
// opcode ignores them; Validate enforces per-opcode requirements.
type Instruction struct {
	Op Opcode
	// Tiles is the number of crossbars fired in parallel (MVM/MMM/FPMVM).
	Tiles int
	// K is the WDM wavelength count (MMM only).
	K int
	// Bits is the input bit-stream depth (FPMVM only).
	Bits int
	// Count is the per-repeat operation count: rows for ROWSTEP, ops for
	// ADD/POPC/THRESH.
	Count int64
	// Repeat repeats the whole macro-op (e.g. once per conv position).
	Repeat int64
	// Convs / DACs are the per-repeat ADC and DAC conversion counts of
	// analog ops.
	Convs, DACs int64
	// Cells is the per-repeat count of memory devices read (crossbar
	// cells conducting, or 2T2R devices sensed); the energy model
	// prices array energy per cell.
	Cells int64
	// Bytes / Hops / ChipHops describe SEND transfers.
	Bytes    int64
	Hops     int
	ChipHops int
	// Src / Dst are region-relative tile operands of placement-aware
	// SENDs: 1 + the tile index inside the program's placement region
	// (compiler.Region, invertible via Region.ResolveTile), so 0 means
	// "unplaced" — legacy and greedy-placed programs leave them unset.
	// Dst 0 on a placed SEND means the transfer leaves the region (host
	// egress; ChipHops carries the chip distance). The operands make
	// placed programs self-describing in dumps, assembly and the wire
	// encoding; the simulator itself schedules from the richer
	// Compiled.Placement structure rather than re-deriving routes from
	// these.
	Src, Dst int
	// Comment is free-form annotation (layer name), not encoded.
	Comment string
}

// Validate checks per-opcode operand constraints.
func (in Instruction) Validate() error {
	nonneg := in.Tiles >= 0 && in.K >= 0 && in.Bits >= 0 && in.Count >= 0 &&
		in.Repeat >= 0 && in.Convs >= 0 && in.DACs >= 0 && in.Cells >= 0 &&
		in.Bytes >= 0 && in.Hops >= 0 && in.ChipHops >= 0 &&
		in.Src >= 0 && in.Dst >= 0
	if !nonneg {
		return fmt.Errorf("isa: negative operand in %s", in)
	}
	switch in.Op {
	case OpNop, OpHalt, OpSync:
		return nil
	case OpMVM, OpFPMVM:
		if in.Tiles < 1 || in.Repeat < 1 {
			return fmt.Errorf("isa: %s needs tiles ≥ 1 and repeat ≥ 1: %s", in.Op, in)
		}
		if in.Op == OpFPMVM && in.Bits < 1 {
			return fmt.Errorf("isa: FPMVM needs bits ≥ 1: %s", in)
		}
	case OpMMM:
		if in.Tiles < 1 || in.Repeat < 1 || in.K < 1 {
			return fmt.Errorf("isa: MMM needs tiles, repeat, k ≥ 1: %s", in)
		}
	case OpRowStep:
		if in.Count < 1 || in.Repeat < 1 {
			return fmt.Errorf("isa: ROWSTEP needs count ≥ 1 and repeat ≥ 1: %s", in)
		}
	case OpAdd, OpPopc, OpThresh:
		if in.Count < 1 {
			return fmt.Errorf("isa: %s needs count ≥ 1: %s", in.Op, in)
		}
	case OpSend:
		if in.Bytes < 1 {
			return fmt.Errorf("isa: SEND needs bytes ≥ 1: %s", in)
		}
	default:
		return fmt.Errorf("isa: unknown opcode %d", in.Op)
	}
	return nil
}

// String renders the canonical assembly form.
func (in Instruction) String() string {
	var sb strings.Builder
	sb.WriteString(in.Op.String())
	put := func(k string, v int64) {
		if v != 0 {
			fmt.Fprintf(&sb, " %s=%d", k, v)
		}
	}
	put("tiles", int64(in.Tiles))
	put("k", int64(in.K))
	put("bits", int64(in.Bits))
	put("count", in.Count)
	put("repeat", in.Repeat)
	put("convs", in.Convs)
	put("dacs", in.DACs)
	put("cells", in.Cells)
	put("bytes", in.Bytes)
	put("hops", int64(in.Hops))
	put("chiphops", int64(in.ChipHops))
	put("src", int64(in.Src))
	put("dst", int64(in.Dst))
	if in.Comment != "" {
		fmt.Fprintf(&sb, " ; %s", in.Comment)
	}
	return sb.String()
}

// Program is an ordered instruction sequence.
type Program []Instruction

// Validate checks every instruction and that the program is
// HALT-terminated.
func (p Program) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("isa: empty program")
	}
	for i, in := range p {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("isa: instruction %d: %w", i, err)
		}
	}
	if p[len(p)-1].Op != OpHalt {
		return fmt.Errorf("isa: program must end with HALT")
	}
	return nil
}

// String renders one instruction per line.
func (p Program) String() string {
	var sb strings.Builder
	for _, in := range p {
		sb.WriteString(in.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Section is one SYNC-delimited slice of a program — the unit the
// pipelined simulator schedules as a stage. Name is the SYNC barrier's
// comment (the compiler stamps the layer name); Ins holds the section's
// instructions including the closing SYNC. Trailing instructions after
// the last SYNC (typically just HALT) form an unnamed final section.
type Section struct {
	Name string
	Ins  Program
}

// Sections splits the program at its SYNC barriers. Unnamed barriers
// get deterministic "section-i" labels, mirroring the simulator's
// per-layer report.
func (p Program) Sections() []Section {
	var out []Section
	start := 0
	for i, in := range p {
		if in.Op != OpSync {
			continue
		}
		name := in.Comment
		if name == "" {
			name = fmt.Sprintf("section-%d", len(out))
		}
		out = append(out, Section{Name: name, Ins: p[start : i+1]})
		start = i + 1
	}
	if start < len(p) {
		out = append(out, Section{Ins: p[start:]})
	}
	return out
}

// --- binary encoding ----------------------------------------------------

// Encode serializes the program (without comments) as a compact byte
// stream: per instruction, the opcode byte followed by thirteen varints.
func (p Program) Encode() []byte {
	var out []byte
	var buf [binary.MaxVarintLen64]byte
	putv := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		out = append(out, buf[:n]...)
	}
	for _, in := range p {
		out = append(out, byte(in.Op))
		putv(int64(in.Tiles))
		putv(int64(in.K))
		putv(int64(in.Bits))
		putv(in.Count)
		putv(in.Repeat)
		putv(in.Convs)
		putv(in.DACs)
		putv(in.Cells)
		putv(in.Bytes)
		putv(int64(in.Hops))
		putv(int64(in.ChipHops))
		putv(int64(in.Src))
		putv(int64(in.Dst))
	}
	return out
}

// Decode parses a byte stream produced by Encode.
func Decode(data []byte) (Program, error) {
	var p Program
	i := 0
	for i < len(data) {
		var in Instruction
		in.Op = Opcode(data[i])
		if _, ok := opNames[in.Op]; !ok {
			return nil, fmt.Errorf("isa: bad opcode %d at offset %d", data[i], i)
		}
		i++
		read := func() (int64, error) {
			v, n := binary.Varint(data[i:])
			if n <= 0 {
				return 0, fmt.Errorf("isa: truncated varint at offset %d", i)
			}
			i += n
			return v, nil
		}
		ints := []*int{&in.Tiles, &in.K, &in.Bits}
		var err error
		var v int64
		for _, dst := range ints {
			if v, err = read(); err != nil {
				return nil, err
			}
			*dst = int(v)
		}
		for _, dst := range []*int64{&in.Count, &in.Repeat, &in.Convs, &in.DACs, &in.Cells, &in.Bytes} {
			if v, err = read(); err != nil {
				return nil, err
			}
			*dst = v
		}
		for _, dst := range []*int{&in.Hops, &in.ChipHops, &in.Src, &in.Dst} {
			if v, err = read(); err != nil {
				return nil, err
			}
			*dst = int(v)
		}
		p = append(p, in)
	}
	return p, nil
}

// --- text assembler ------------------------------------------------------

// Parse assembles the textual form produced by Program.String (and
// hand-written assembly): one instruction per line, `OP key=value ...`,
// with `;` starting a comment and blank lines ignored.
func Parse(src string) (Program, error) {
	var p Program
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		var comment string
		if idx := strings.Index(line, ";"); idx >= 0 {
			comment = strings.TrimSpace(line[idx+1:])
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		op, ok := opByName[strings.ToUpper(fields[0])]
		if !ok {
			return nil, fmt.Errorf("isa: line %d: unknown opcode %q", lineNo+1, fields[0])
		}
		in := Instruction{Op: op, Comment: comment}
		for _, f := range fields[1:] {
			kv := strings.SplitN(f, "=", 2)
			if len(kv) != 2 {
				return nil, fmt.Errorf("isa: line %d: bad operand %q", lineNo+1, f)
			}
			var v int64
			if _, err := fmt.Sscanf(kv[1], "%d", &v); err != nil {
				return nil, fmt.Errorf("isa: line %d: bad value in %q", lineNo+1, f)
			}
			switch strings.ToLower(kv[0]) {
			case "tiles":
				in.Tiles = int(v)
			case "k":
				in.K = int(v)
			case "bits":
				in.Bits = int(v)
			case "count":
				in.Count = v
			case "repeat":
				in.Repeat = v
			case "convs":
				in.Convs = v
			case "dacs":
				in.DACs = v
			case "cells":
				in.Cells = v
			case "bytes":
				in.Bytes = v
			case "hops":
				in.Hops = int(v)
			case "chiphops":
				in.ChipHops = int(v)
			case "src":
				in.Src = int(v)
			case "dst":
				in.Dst = int(v)
			default:
				return nil, fmt.Errorf("isa: line %d: unknown operand %q", lineNo+1, kv[0])
			}
		}
		p = append(p, in)
	}
	if len(p) == 0 {
		return nil, fmt.Errorf("isa: no instructions")
	}
	return p, nil
}
