package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleProgram() Program {
	return Program{
		{Op: OpMVM, Tiles: 9, Repeat: 1024, Convs: 1152, DACs: 2304, Cells: 294912, Comment: "conv1"},
		{Op: OpMMM, Tiles: 9, K: 16, Repeat: 64, Convs: 18432, DACs: 36864, Cells: 294912, Count: 256},
		{Op: OpRowStep, Count: 1152, Repeat: 1024, Cells: 294912},
		{Op: OpFPMVM, Tiles: 4, Bits: 8, K: 2, Repeat: 16, Convs: 8192, DACs: 432, Cells: 27648, Count: 27},
		{Op: OpAdd, Count: 1024},
		{Op: OpPopc, Count: 4096},
		{Op: OpThresh, Count: 128},
		{Op: OpSend, Bytes: 16384, Hops: 3, ChipHops: 1},
		{Op: OpSync, Comment: "conv1"},
		{Op: OpHalt},
	}
}

func TestOpcodeStrings(t *testing.T) {
	for op, want := range map[Opcode]string{
		OpNop: "NOP", OpMVM: "MVM", OpMMM: "MMM", OpRowStep: "ROWSTEP",
		OpFPMVM: "FPMVM", OpAdd: "ADD", OpPopc: "POPC", OpThresh: "THRESH",
		OpSend: "SEND", OpSync: "SYNC", OpHalt: "HALT",
	} {
		if op.String() != want {
			t.Fatalf("%v != %s", op, want)
		}
	}
	if !strings.Contains(Opcode(99).String(), "99") {
		t.Fatal("unknown opcode should print numerically")
	}
}

func TestProgramValidate(t *testing.T) {
	if err := sampleProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Instruction{
		{Op: OpMVM},                                 // no tiles/repeat
		{Op: OpMVM, Tiles: 1},                       // no repeat
		{Op: OpMMM, Tiles: 1, Repeat: 1},            // no k
		{Op: OpFPMVM, Tiles: 1, Repeat: 1},          // no bits
		{Op: OpRowStep, Repeat: 1},                  // no count
		{Op: OpAdd},                                 // no count
		{Op: OpSend},                                // no bytes
		{Op: OpMVM, Tiles: -1, Repeat: 1},           // negative
		{Op: Opcode(77)},                            // unknown
		{Op: OpMVM, Tiles: 1, Repeat: 1, Cells: -5}, // negative cells
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Fatalf("case %d (%s): expected error", i, in)
		}
	}
}

func TestProgramValidateStructure(t *testing.T) {
	if err := (Program{}).Validate(); err == nil {
		t.Fatal("empty program should fail")
	}
	noHalt := Program{{Op: OpNop}}
	if err := noHalt.Validate(); err == nil {
		t.Fatal("program without HALT should fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := sampleProgram()
	decoded, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(p) {
		t.Fatalf("decoded %d instructions, want %d", len(decoded), len(p))
	}
	for i := range p {
		want := p[i]
		want.Comment = "" // comments are not encoded
		if decoded[i] != want {
			t.Fatalf("instruction %d: %s != %s", i, decoded[i], want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{255}); err == nil {
		t.Fatal("bad opcode should fail")
	}
	// Valid opcode but truncated operands.
	if _, err := Decode([]byte{byte(OpMVM), 2}); err == nil {
		t.Fatal("truncated stream should fail")
	}
}

func TestParseRoundTrip(t *testing.T) {
	p := sampleProgram()
	parsed, err := Parse(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(p) {
		t.Fatalf("parsed %d, want %d", len(parsed), len(p))
	}
	for i := range p {
		if parsed[i] != p[i] {
			t.Fatalf("instruction %d: %q != %q", i, parsed[i].String(), p[i].String())
		}
	}
}

func TestParseHandwritten(t *testing.T) {
	src := `
		mvm tiles=2 repeat=10 ; layer one
		add count=5

		HALT
	`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[0].Op != OpMVM || p[0].Tiles != 2 || p[0].Comment != "layer one" {
		t.Fatalf("parsed %v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",              // empty
		"BOGUS tiles=1", // unknown opcode
		"MVM tiles",     // malformed operand
		"MVM tiles=x",   // bad value
		"MVM wibble=3",  // unknown operand
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("case %d (%q): expected parse error", i, src)
		}
	}
}

// Property: encode/decode is lossless for arbitrary non-negative
// operand combinations.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(tiles, k, bits uint8, count, repeat, convs, dacs, cells, bytes uint16, hops, chip uint8) bool {
		in := Instruction{
			Op: OpMMM, Tiles: int(tiles), K: int(k), Bits: int(bits),
			Count: int64(count), Repeat: int64(repeat), Convs: int64(convs),
			DACs: int64(dacs), Cells: int64(cells), Bytes: int64(bytes),
			Hops: int(hops), ChipHops: int(chip),
		}
		p := Program{in}
		out, err := Decode(p.Encode())
		if err != nil || len(out) != 1 {
			return false
		}
		return out[0] == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringContainsOperands(t *testing.T) {
	in := Instruction{Op: OpMMM, Tiles: 3, K: 16, Repeat: 7, Comment: "note"}
	s := in.String()
	for _, frag := range []string{"MMM", "tiles=3", "k=16", "repeat=7", "; note"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("%q missing %q", s, frag)
		}
	}
}

func TestSections(t *testing.T) {
	p := Program{
		{Op: OpMVM, Tiles: 1, Repeat: 1},
		{Op: OpSend, Bytes: 8},
		{Op: OpSync, Comment: "layer-a"},
		{Op: OpMMM, Tiles: 2, K: 4, Repeat: 1},
		{Op: OpSync}, // unnamed
		{Op: OpHalt},
	}
	secs := p.Sections()
	if len(secs) != 3 {
		t.Fatalf("got %d sections, want 3", len(secs))
	}
	if secs[0].Name != "layer-a" || len(secs[0].Ins) != 3 {
		t.Fatalf("section 0 wrong: %q, %d instructions", secs[0].Name, len(secs[0].Ins))
	}
	if secs[0].Ins[len(secs[0].Ins)-1].Op != OpSync {
		t.Fatal("section must include its closing SYNC")
	}
	if secs[1].Name != "section-1" {
		t.Fatalf("unnamed barrier should get a deterministic label, got %q", secs[1].Name)
	}
	// Trailing HALT forms the unnamed final section.
	if secs[2].Name != "" || len(secs[2].Ins) != 1 || secs[2].Ins[0].Op != OpHalt {
		t.Fatalf("trailing section wrong: %+v", secs[2])
	}
	// Sections cover the program exactly, in order.
	total := 0
	for _, s := range secs {
		total += len(s.Ins)
	}
	if total != len(p) {
		t.Fatalf("sections cover %d of %d instructions", total, len(p))
	}
}

// TestRegionRelativeOperands covers the placement IR's SEND operands:
// src/dst survive String→Parse and Encode→Decode, render only when
// set, and negatives are rejected.
func TestRegionRelativeOperands(t *testing.T) {
	p := Program{
		{Op: OpSend, Bytes: 64, Hops: 3, ChipHops: 2, Src: 5, Dst: 12, Comment: "fc0/gather"},
		{Op: OpSend, Bytes: 8, Hops: 1, Src: 7}, // dst 0 = host egress
		{Op: OpHalt},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	text := p.String()
	if !strings.Contains(text, "src=5") || !strings.Contains(text, "dst=12") {
		t.Fatalf("operands not rendered:\n%s", text)
	}
	if strings.Contains(strings.Split(text, "\n")[1], "dst=") {
		t.Fatalf("zero dst must not render:\n%s", text)
	}
	parsed, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if parsed[0].Src != 5 || parsed[0].Dst != 12 || parsed[1].Src != 7 || parsed[1].Dst != 0 {
		t.Fatalf("parse lost operands: %+v", parsed[:2])
	}
	decoded, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if decoded[i].Src != p[i].Src || decoded[i].Dst != p[i].Dst {
			t.Fatalf("encode/decode lost operands at %d: %+v", i, decoded[i])
		}
	}
	bad := Instruction{Op: OpSend, Bytes: 1, Src: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative src must be invalid")
	}
}
