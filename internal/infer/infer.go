// Package infer is the parallel batched inference engine: a worker
// pool that fans independent work items out over N goroutines with
// deterministic, index-ordered results, and an Engine that runs BNN
// reference inference over batches using one scratch-carrying model
// clone per worker (bnn.Model.CloneShared), so the hot loop stays
// allocation-free inside each worker.
//
// Everything executed through this package is pure integer/float math
// with no cross-item state, so parallel results are bit-identical to
// serial execution — the equivalence tests in this package and in
// internal/eval pin that down.
package infer

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/tensor"
)

// Workers normalizes a worker-count setting: values < 1 mean "one per
// available CPU", and the count is clamped to n when n is smaller.
func Workers(workers, n int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn(worker, i) for i in [0, n) on up to `workers` goroutines
// (< 1 means one per CPU) and returns the results in index order,
// regardless of scheduling. The worker id is in [0, Workers(workers,
// n)) and is stable for the duration of the call, so fn can index
// per-worker scratch state. If any call fails, the error from the
// lowest failing index is returned (deterministically) and remaining
// items may be skipped.
func Map[T any](workers, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers = Workers(workers, n)

	var (
		next   atomic.Int64
		mu     sync.Mutex
		firstI = -1
		firstE error
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstI == -1 || i < firstI {
			firstI, firstE = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				// Check the failure flag BEFORE drawing an index: a drawn
				// index always executes, so the monotonically increasing
				// counter guarantees the lowest failing index is always
				// attempted and recorded, keeping the returned error
				// deterministic under any scheduling.
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := fn(w, i)
				if err != nil {
					record(i, err)
					return
				}
				out[i] = r
			}
		}(w)
	}
	wg.Wait()
	if firstE != nil {
		return nil, firstE
	}
	return out, nil
}

// Engine runs batched reference inference for one BNN model across a
// fixed-size worker pool. Each worker lazily acquires a CloneShared
// copy of the model on first use (so small batches never pay for
// unused clones), and per-inference work reuses that worker's scratch
// buffers, so the batch loop performs no steady-state allocations
// beyond the result slice. The engine never touches the model passed
// to New, so the caller may keep using it concurrently; batch calls on
// one Engine are serialized internally, so the Engine itself is also
// safe for concurrent use (concurrent batches queue rather than
// overlap — use one Engine per caller for overlap).
type Engine struct {
	workers int
	proto   *bnn.Model
	mu      sync.Mutex // serializes batches; models[w] and chunks[w] are per-worker scratch
	models  []*bnn.Model
	chunks  [][]*tensor.Float // per-worker shaped-view staging for lane chunks
}

// New builds an engine with the given worker count (< 1 means one per
// available CPU).
func New(m *bnn.Model, workers int) *Engine {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers: workers,
		proto:   m,
		models:  make([]*bnn.Model, workers),
		chunks:  make([][]*tensor.Float, workers),
	}
}

// WorkerCount returns the size of the pool.
func (e *Engine) WorkerCount() int { return e.workers }

// model returns worker w's clone, creating it on first use. Only
// worker w touches index w during a batch, and batches are serialized,
// so no further synchronization is needed.
func (e *Engine) model(w int) *bnn.Model {
	if e.models[w] == nil {
		e.models[w] = e.proto.CloneShared()
	}
	return e.models[w]
}

// InputSize returns the element count of one model input.
func (e *Engine) InputSize() int {
	n := 1
	for _, d := range e.proto.InputShape {
		n *= d
	}
	return n
}

// checkBatch validates a batch of (possibly untrusted) inputs against
// the model's input shape before any layer touches them: every tensor
// must either match the shape exactly or be a flat vector of the right
// size (shaped requests and the wire format of the serving front end,
// respectively). A mismatch is a clear error, never a deep panic inside
// a layer's forward pass.
func (e *Engine) checkBatch(xs []*tensor.Float) error {
	want := e.proto.InputShape
	size := e.InputSize()
	for i, x := range xs {
		if x == nil {
			return fmt.Errorf("infer: input %d is nil", i)
		}
		if x.Size() != size {
			return fmt.Errorf("infer: input %d has %d elements, model %q wants shape %v (%d elements)",
				i, x.Size(), e.proto.Name(), want, size)
		}
		if x.Dims() == 1 || x.Dims() == len(want) {
			ok := x.Dims() == 1
			if !ok {
				ok = true
				for d, w := range want {
					if x.Dim(d) != w {
						ok = false
						break
					}
				}
			}
			if ok {
				continue
			}
		}
		return fmt.Errorf("infer: input %d has shape %v, model %q wants %v (or a flat vector of %d)",
			i, x.Shape(), e.proto.Name(), want, size)
	}
	return nil
}

// shaped returns x in the model's input shape (a view — no copy).
func (e *Engine) shaped(x *tensor.Float) *tensor.Float {
	if x.Dims() != len(e.proto.InputShape) {
		return x.Reshape(e.proto.InputShape...)
	}
	return x
}

// chunk returns worker w's shaped-view staging slice, holding the
// shaped inputs of one lane chunk (capacity one lane word).
func (e *Engine) chunk(w int) []*tensor.Float {
	if e.chunks[w] == nil {
		e.chunks[w] = make([]*tensor.Float, 0, tensor.LaneWidth)
	}
	return e.chunks[w][:0]
}

// InferBatch runs the forward pass for every input and returns the
// logits in input order. Inputs are shape-checked up front (flat
// vectors of the right size are accepted and reshaped), so malformed
// batches fail with an error instead of panicking mid-layer. The batch
// is chunked into LaneWidth-sample words that run the bit-parallel
// batch path; chunking is by index, so results are bit-identical to
// per-sample inference at any worker count. Each result is a fresh
// tensor (cloned out of the worker's scratch), safe to retain.
func (e *Engine) InferBatch(xs []*tensor.Float) ([]*tensor.Float, error) {
	if err := e.checkBatch(xs); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*tensor.Float, len(xs))
	err := e.runChunks(xs, func(lo int, ys []*tensor.Float) {
		for i, y := range ys {
			out[lo+i] = y.Clone()
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatch returns the argmax class for every input, in input
// order, with the same shape validation and lane chunking as
// InferBatch.
func (e *Engine) PredictBatch(xs []*tensor.Float) ([]int, error) {
	if err := e.checkBatch(xs); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, len(xs))
	err := e.runChunks(xs, func(lo int, ys []*tensor.Float) {
		for i, y := range ys {
			out[lo+i] = y.ArgMax()
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runChunks fans LaneWidth-sample chunks of xs over the pool and hands
// each chunk's logits (worker-owned scratch, valid only inside the
// callback) to sink with the chunk's base index. Chunk boundaries
// depend only on len(xs) and each chunk runs serially inside one
// worker, so results are deterministic at any worker count.
func (e *Engine) runChunks(xs []*tensor.Float, sink func(lo int, ys []*tensor.Float)) error {
	n := len(xs)
	chunks := (n + tensor.LaneWidth - 1) / tensor.LaneWidth
	_, err := Map(e.workers, chunks, func(w, ci int) (struct{}, error) {
		lo := ci * tensor.LaneWidth
		hi := lo + tensor.LaneWidth
		if hi > n {
			hi = n
		}
		m := e.model(w)
		if hi-lo == 1 {
			// A lone sample gains nothing from the batch path; run the
			// per-sample reference directly.
			y := m.Infer(e.shaped(xs[lo]))
			sink(lo, []*tensor.Float{y})
			return struct{}{}, nil
		}
		chunk := e.chunk(w)
		for i := lo; i < hi; i++ {
			chunk = append(chunk, e.shaped(xs[i]))
		}
		sink(lo, m.InferBatchBits(chunk))
		return struct{}{}, nil
	})
	return err
}
