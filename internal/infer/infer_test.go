package infer

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/tensor"
)

func TestMapReturnsResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		out, err := Map(workers, 50, func(_, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	out, err := Map(4, 0, func(_, i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestMapReportsLowestFailingIndex(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Map(4, 100, func(_, i int) (int, error) {
		if i == 13 || i == 77 {
			return 0, fmt.Errorf("item %d: %w", i, sentinel)
		}
		return i, nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	// Index 13 fails before 77 is reached with any worker count, and
	// Map keeps the lowest failing index even when both fire.
	if err.Error() != "item 13: boom" {
		t.Fatalf("err = %q, want the lowest failing index", err)
	}
}

func TestMapWorkerIDsAreInRange(t *testing.T) {
	var bad atomic.Int64
	w := Workers(3, 100)
	_, err := Map(3, 100, func(worker, _ int) (struct{}, error) {
		if worker < 0 || worker >= w {
			bad.Add(1)
		}
		return struct{}{}, nil
	})
	if err != nil || bad.Load() != 0 {
		t.Fatalf("bad worker ids: %d (err %v)", bad.Load(), err)
	}
}

// TestEngineMatchesSerialInference is the bit-identity test: the
// parallel engine must reproduce serial Model.Infer exactly, for both
// MLP and CNN workloads, at several worker counts, in input order.
func TestEngineMatchesSerialInference(t *testing.T) {
	for _, name := range []string{"MLP-S", "CNN-S"} {
		m, err := bnn.NewModel(name, 11)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		xs := make([]*tensor.Float, 24)
		for i := range xs {
			xs[i] = tensor.NewFloat(m.InputShape...)
			for j := range xs[i].Data() {
				xs[i].Data()[j] = rng.NormFloat64()
			}
		}
		serial := m.CloneShared()
		want := make([][]float64, len(xs))
		wantCls := make([]int, len(xs))
		for i, x := range xs {
			want[i] = append([]float64(nil), serial.Infer(x).Data()...)
			wantCls[i] = serial.Predict(x)
		}
		for _, workers := range []int{1, 3, 8} {
			e := New(m, workers)
			got := e.InferBatch(xs)
			for i := range xs {
				if len(got[i].Data()) != len(want[i]) {
					t.Fatalf("%s w=%d input %d: logit count mismatch", name, workers, i)
				}
				for j := range want[i] {
					if got[i].Data()[j] != want[i][j] {
						t.Fatalf("%s w=%d input %d logit %d: parallel %v != serial %v",
							name, workers, i, j, got[i].Data()[j], want[i][j])
					}
				}
			}
			for i, c := range e.PredictBatch(xs) {
				if c != wantCls[i] {
					t.Fatalf("%s w=%d input %d: class %d != %d", name, workers, i, c, wantCls[i])
				}
			}
		}
	}
}

// TestEngineResultsAreIndependent checks InferBatch results are cloned
// out of worker scratch (mutating one does not affect another).
func TestEngineResultsAreIndependent(t *testing.T) {
	m, err := bnn.NewModel("MLP-S", 11)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*tensor.Float, 4)
	for i := range xs {
		xs[i] = tensor.NewFloat(m.InputShape...)
		for j := range xs[i].Data() {
			xs[i].Data()[j] = float64(i + j)
		}
	}
	got := New(m, 1).InferBatch(xs) // one worker ⇒ shared scratch per call
	for i := 1; i < len(got); i++ {
		if &got[0].Data()[0] == &got[i].Data()[0] {
			t.Fatal("InferBatch returned aliased result tensors")
		}
	}
}

func TestEngineDoesNotTouchOriginalModel(t *testing.T) {
	m, err := bnn.NewModel("MLP-S", 11)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewFloat(m.InputShape...)
	for j := range x.Data() {
		x.Data()[j] = 0.5
	}
	before := append([]float64(nil), m.Infer(x).Data()...)
	y := m.Infer(x) // m's scratch now holds the logits for x
	e := New(m, 4)
	e.PredictBatch([]*tensor.Float{x, x, x, x})
	for j, v := range y.Data() {
		if v != before[j] {
			t.Fatal("engine mutated the original model's scratch")
		}
	}
}
