package infer

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/tensor"
)

func TestMapReturnsResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		out, err := Map(workers, 50, func(_, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	out, err := Map(4, 0, func(_, i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestMapReportsLowestFailingIndex(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Map(4, 100, func(_, i int) (int, error) {
		if i == 13 || i == 77 {
			return 0, fmt.Errorf("item %d: %w", i, sentinel)
		}
		return i, nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	// Index 13 fails before 77 is reached with any worker count, and
	// Map keeps the lowest failing index even when both fire.
	if err.Error() != "item 13: boom" {
		t.Fatalf("err = %q, want the lowest failing index", err)
	}
}

func TestMapWorkerIDsAreInRange(t *testing.T) {
	var bad atomic.Int64
	w := Workers(3, 100)
	_, err := Map(3, 100, func(worker, _ int) (struct{}, error) {
		if worker < 0 || worker >= w {
			bad.Add(1)
		}
		return struct{}{}, nil
	})
	if err != nil || bad.Load() != 0 {
		t.Fatalf("bad worker ids: %d (err %v)", bad.Load(), err)
	}
}

// TestEngineMatchesSerialInference is the bit-identity test: the
// parallel engine must reproduce serial Model.Infer exactly, for both
// MLP and CNN workloads, at several worker counts, in input order.
func TestEngineMatchesSerialInference(t *testing.T) {
	for _, name := range []string{"MLP-S", "CNN-S"} {
		m, err := bnn.NewModel(name, 11)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		xs := make([]*tensor.Float, 24)
		for i := range xs {
			xs[i] = tensor.NewFloat(m.InputShape...)
			for j := range xs[i].Data() {
				xs[i].Data()[j] = rng.NormFloat64()
			}
		}
		serial := m.CloneShared()
		want := make([][]float64, len(xs))
		wantCls := make([]int, len(xs))
		for i, x := range xs {
			want[i] = append([]float64(nil), serial.Infer(x).Data()...)
			wantCls[i] = serial.Predict(x)
		}
		for _, workers := range []int{1, 3, 8} {
			e := New(m, workers)
			got, err := e.InferBatch(xs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range xs {
				if len(got[i].Data()) != len(want[i]) {
					t.Fatalf("%s w=%d input %d: logit count mismatch", name, workers, i)
				}
				for j := range want[i] {
					if got[i].Data()[j] != want[i][j] {
						t.Fatalf("%s w=%d input %d logit %d: parallel %v != serial %v",
							name, workers, i, j, got[i].Data()[j], want[i][j])
					}
				}
			}
			cls, err := e.PredictBatch(xs)
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range cls {
				if c != wantCls[i] {
					t.Fatalf("%s w=%d input %d: class %d != %d", name, workers, i, c, wantCls[i])
				}
			}
		}
	}
}

// TestEngineResultsAreIndependent checks InferBatch results are cloned
// out of worker scratch (mutating one does not affect another).
func TestEngineResultsAreIndependent(t *testing.T) {
	m, err := bnn.NewModel("MLP-S", 11)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*tensor.Float, 4)
	for i := range xs {
		xs[i] = tensor.NewFloat(m.InputShape...)
		for j := range xs[i].Data() {
			xs[i].Data()[j] = float64(i + j)
		}
	}
	got, err := New(m, 1).InferBatch(xs) // one worker ⇒ shared scratch per call
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if &got[0].Data()[0] == &got[i].Data()[0] {
			t.Fatal("InferBatch returned aliased result tensors")
		}
	}
}

func TestEngineDoesNotTouchOriginalModel(t *testing.T) {
	m, err := bnn.NewModel("MLP-S", 11)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewFloat(m.InputShape...)
	for j := range x.Data() {
		x.Data()[j] = 0.5
	}
	before := append([]float64(nil), m.Infer(x).Data()...)
	y := m.Infer(x) // m's scratch now holds the logits for x
	e := New(m, 4)
	if _, err := e.PredictBatch([]*tensor.Float{x, x, x, x}); err != nil {
		t.Fatal(err)
	}
	for j, v := range y.Data() {
		if v != before[j] {
			t.Fatal("engine mutated the original model's scratch")
		}
	}
}

// TestBatchShapeValidation: server inputs are untrusted, so malformed
// batches must fail with a clear error instead of a deep layer panic.
func TestBatchShapeValidation(t *testing.T) {
	mlp, err := bnn.NewModel("MLP-S", 11)
	if err != nil {
		t.Fatal(err)
	}
	cnn, err := bnn.NewModel("CNN-S", 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		e    *Engine
		x    *tensor.Float
	}{
		{"nil input", New(mlp, 2), nil},
		{"wrong size", New(mlp, 2), tensor.NewFloat(10)},
		{"wrong rank", New(mlp, 2), tensor.NewFloat(28, 28)},
		{"wrong dims", New(cnn, 2), tensor.NewFloat(32, 32, 3)},
	} {
		if _, err := tc.e.InferBatch([]*tensor.Float{tc.x}); err == nil {
			t.Errorf("%s: InferBatch accepted a bad input", tc.name)
		}
		if _, err := tc.e.PredictBatch([]*tensor.Float{tc.x}); err == nil {
			t.Errorf("%s: PredictBatch accepted a bad input", tc.name)
		}
	}
	// Flat vectors of the right size are the wire format of the serving
	// front end: accepted and reshaped, identical to the shaped result.
	e := New(cnn, 2)
	shaped := tensor.NewFloat(cnn.InputShape...)
	for i := range shaped.Data() {
		shaped.Data()[i] = float64(i%7) - 3
	}
	flat := tensor.FromSlice(append([]float64(nil), shaped.Data()...), shaped.Size())
	a, err := e.InferBatch([]*tensor.Float{shaped})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.InferBatch([]*tensor.Float{flat})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a[0].Data() {
		if a[0].Data()[i] != b[0].Data()[i] {
			t.Fatalf("flat input logit %d: %v != %v", i, b[0].Data()[i], a[0].Data()[i])
		}
	}
}

// TestEngineChunkedBatchMatchesSerial drives batch sizes that span the
// chunking regimes — single sample, ragged remainder of 1, exactly one
// lane word, word+1, multi-word — and pins every logit against the
// serial reference at several worker counts. This is the determinism
// guarantee of the lane-chunked engine: chunk boundaries are a pure
// function of the batch length, so worker count never changes results.
func TestEngineChunkedBatchMatchesSerial(t *testing.T) {
	m, err := bnn.NewModel("MLP-S", 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const maxN = 130
	xs := make([]*tensor.Float, maxN)
	for i := range xs {
		xs[i] = tensor.NewFloat(m.InputShape...)
		for j := range xs[i].Data() {
			xs[i].Data()[j] = rng.NormFloat64()
		}
	}
	serial := m.CloneShared()
	want := make([][]float64, maxN)
	wantCls := make([]int, maxN)
	for i, x := range xs {
		want[i] = append([]float64(nil), serial.Infer(x).Data()...)
		wantCls[i] = serial.Predict(x)
	}
	sizes := []int{1, 63, 64, 65, 128, 130}
	if testing.Short() {
		sizes = []int{1, 65}
	}
	for _, n := range sizes {
		for _, workers := range []int{1, 2, 4, 0} {
			e := New(m, workers)
			got, err := e.InferBatch(xs[:n])
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				for j := range want[i] {
					if got[i].Data()[j] != want[i][j] {
						t.Fatalf("n=%d workers=%d input %d logit %d: engine %v != serial %v",
							n, workers, i, j, got[i].Data()[j], want[i][j])
					}
				}
			}
			cls, err := e.PredictBatch(xs[:n])
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range cls {
				if c != wantCls[i] {
					t.Fatalf("n=%d workers=%d input %d: class %d != %d", n, workers, i, c, wantCls[i])
				}
			}
		}
	}
}
