// Package arch describes the EinsteinBarrier spatial architecture
// (paper Fig. 4): a hierarchy of Nodes (chips) connected by chip-to-chip
// links, Tiles on an on-chip network, ECores inside tiles (instruction
// memory, operand steer unit, scalar functional units, transmitter),
// and VCores — the VMM-capable crossbars (ePCM or oPCM) each ECore
// controls. The same hierarchy hosts all three CIM designs of the
// evaluation; they differ in VCore technology, mapping, and whether the
// MMM instruction is available.
package arch

import (
	"fmt"
	"math"

	"einsteinbarrier/internal/device"
)

// Design is a handle into the design registry (registry.go). The three
// constants below are the paper's evaluated CIM designs (§V-B), which
// occupy the first registry slots; further designs are added with
// Register/MustRegister and resolved by name with ParseDesign.
type Design int

const (
	// BaselineEPCM is the SotA CustBinaryMap accelerator on 2T2R ePCM
	// arrays (Hirtzlin et al.).
	BaselineEPCM Design = iota
	// TacitEPCM is TacitMap on electronic PCM 1T1R crossbars.
	TacitEPCM
	// EinsteinBarrier is TacitMap on oPCM VCores with WDM.
	EinsteinBarrier
)

// CIMDesigns is the canonical evaluated CIM design set of Fig. 7/8, in
// report order — the single source of truth for code that iterates
// over the paper's designs. Registry additions (see Designs) are not
// part of the figure set.
var CIMDesigns = []Design{BaselineEPCM, TacitEPCM, EinsteinBarrier}

// String implements fmt.Stringer: the registered canonical name, which
// ParseDesign inverts. Unregistered values print as Design(n).
func (d Design) String() string {
	if s, err := d.Spec(); err == nil {
		return s.Name
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// Tech returns the VCore technology of the design (ePCM for
// unregistered handles).
func (d Design) Tech() device.Technology {
	if s, err := d.Spec(); err == nil {
		return s.Tech
	}
	return device.EPCM
}

// Config is the architecture configuration shared by the designs.
type Config struct {
	// Nodes, TilesPerNode, ECoresPerTile, VCoresPerECore set the
	// hierarchy (Fig. 4 b–e).
	Nodes          int
	TilesPerNode   int
	ECoresPerTile  int
	VCoresPerECore int
	// CrossbarRows/Cols are the VCore array dimensions.
	CrossbarRows, CrossbarCols int
	// ColumnsPerADC is the readout sharing factor (ADC conversion
	// rounds per VMM).
	ColumnsPerADC int
	// WDMCapacity is K for oPCM VCores (1 on electronic designs).
	WDMCapacity int
	// InputBits is the bit depth of the high-precision first/last
	// layers' activations (bit-streamed through the crossbars).
	InputBits int
	// FPReplication is how many replicas of a high-precision first
	// conv layer the compiler may place to process positions in
	// parallel (bounded by spare VCores).
	FPReplication int
}

// DefaultConfig returns the evaluation architecture: 4 nodes × 16 tiles
// × 8 ECores × 8 VCores of 256×256, 8-column ADC sharing, K=16, 8-bit
// IO layers.
func DefaultConfig() Config {
	return Config{
		Nodes:          4,
		TilesPerNode:   16,
		ECoresPerTile:  8,
		VCoresPerECore: 8,
		CrossbarRows:   256,
		CrossbarCols:   256,
		ColumnsPerADC:  8,
		WDMCapacity:    16,
		InputBits:      8,
		FPReplication:  64,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	pos := map[string]int{
		"Nodes": c.Nodes, "TilesPerNode": c.TilesPerNode,
		"ECoresPerTile": c.ECoresPerTile, "VCoresPerECore": c.VCoresPerECore,
		"CrossbarRows": c.CrossbarRows, "CrossbarCols": c.CrossbarCols,
		"ColumnsPerADC": c.ColumnsPerADC, "WDMCapacity": c.WDMCapacity,
		"InputBits": c.InputBits, "FPReplication": c.FPReplication,
	}
	for name, v := range pos {
		if v < 1 {
			return fmt.Errorf("arch: %s must be ≥ 1, got %d", name, v)
		}
	}
	if c.ColumnsPerADC > c.CrossbarCols {
		return fmt.Errorf("arch: ColumnsPerADC %d exceeds columns %d", c.ColumnsPerADC, c.CrossbarCols)
	}
	if c.CrossbarRows%2 != 0 {
		return fmt.Errorf("arch: crossbar rows %d must be even (TacitMap stores [w;¬w])", c.CrossbarRows)
	}
	return nil
}

// TotalTiles returns the tile count across all nodes.
func (c Config) TotalTiles() int { return c.Nodes * c.TilesPerNode }

// TotalECores returns the ECore count.
func (c Config) TotalECores() int { return c.TotalTiles() * c.ECoresPerTile }

// TotalVCores returns the crossbar count.
func (c Config) TotalVCores() int { return c.TotalECores() * c.VCoresPerECore }

// MeshWidth returns the side of the per-node tile mesh.
func (c Config) MeshWidth() int {
	return int(math.Ceil(math.Sqrt(float64(c.TilesPerNode))))
}

// CellsPerVCore returns the device count of one crossbar.
func (c Config) CellsPerVCore() int { return c.CrossbarRows * c.CrossbarCols }

// WeightCapacityBits returns how many TacitMap-mapped binary weight
// bits the machine can hold: each bit uses two cells ([w;¬w]).
func (c Config) WeightCapacityBits() int64 {
	return int64(c.TotalVCores()) * int64(c.CellsPerVCore()) / 2
}

// ADCRoundsPerVMM returns the serial conversion rounds per VMM.
func (c Config) ADCRoundsPerVMM() int { return c.ColumnsPerADC }

// EffectiveK returns the WDM capacity available to a design: 1 on
// electronic designs (no frequency dimension), the architecture's K on
// WDM designs, or the design's own capacity when its spec overrides it
// (wide-K variants).
func (c Config) EffectiveK(d Design) int {
	s, err := d.Spec()
	if err != nil || !s.WDM {
		return 1
	}
	if s.WDMCapacity > 0 {
		return s.WDMCapacity
	}
	return c.WDMCapacity
}

// VCoreID identifies one crossbar in the hierarchy.
type VCoreID struct {
	Node, Tile, ECore, VCore int
}

// VCoreByIndex maps a flat index to its hierarchical ID.
func (c Config) VCoreByIndex(i int) (VCoreID, error) {
	if i < 0 || i >= c.TotalVCores() {
		return VCoreID{}, fmt.Errorf("arch: vcore index %d outside [0,%d)", i, c.TotalVCores())
	}
	id := VCoreID{}
	id.VCore = i % c.VCoresPerECore
	i /= c.VCoresPerECore
	id.ECore = i % c.ECoresPerTile
	i /= c.ECoresPerTile
	id.Tile = i % c.TilesPerNode
	id.Node = i / c.TilesPerNode
	return id, nil
}

// Index maps a hierarchical ID back to its flat index.
func (c Config) Index(id VCoreID) (int, error) {
	if id.Node < 0 || id.Node >= c.Nodes ||
		id.Tile < 0 || id.Tile >= c.TilesPerNode ||
		id.ECore < 0 || id.ECore >= c.ECoresPerTile ||
		id.VCore < 0 || id.VCore >= c.VCoresPerECore {
		return 0, fmt.Errorf("arch: invalid vcore id %+v", id)
	}
	return ((id.Node*c.TilesPerNode+id.Tile)*c.ECoresPerTile+id.ECore)*c.VCoresPerECore + id.VCore, nil
}
