package arch

import (
	"strings"
	"testing"

	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/energy"
)

func TestBuiltinsOccupyReservedSlots(t *testing.T) {
	for d, want := range map[Design]string{
		BaselineEPCM:       "Baseline-ePCM",
		TacitEPCM:          "TacitMap-ePCM",
		EinsteinBarrier:    "EinsteinBarrier",
		MLCEPCM:            "MLC-ePCM",
		EinsteinBarrierK64: "EinsteinBarrier-K64",
	} {
		if d.String() != want {
			t.Errorf("design %d: name %q, want %q", int(d), d.String(), want)
		}
	}
	if len(Designs()) < 5 {
		t.Fatalf("registry has %d designs, want ≥ 5", len(Designs()))
	}
}

// TestDesignStringParseRoundTrip: registry names are the canonical
// string form and ParseDesign inverts String for every registered
// design.
func TestDesignStringParseRoundTrip(t *testing.T) {
	for _, d := range Designs() {
		back, err := ParseDesign(d.String())
		if err != nil {
			t.Fatalf("ParseDesign(%q): %v", d.String(), err)
		}
		if back != d {
			t.Fatalf("round trip %q: got %v, want %v", d.String(), back, d)
		}
	}
}

func TestParseDesignAliasesAndCase(t *testing.T) {
	cases := map[string]Design{
		"baseline": BaselineEPCM,
		"cust":     BaselineEPCM,
		"tacit":    TacitEPCM,
		"eb":       EinsteinBarrier,
		"EB":       EinsteinBarrier,
		"  eb64 ":  EinsteinBarrierK64,
		"wide-k":   EinsteinBarrierK64,
		"mlc":      MLCEPCM,
		"MLC-EPCM": MLCEPCM,
	}
	for in, want := range cases {
		got, err := ParseDesign(in)
		if err != nil {
			t.Fatalf("ParseDesign(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseDesign(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseDesignUnknownErrors(t *testing.T) {
	_, err := ParseDesign("warp-drive")
	if err == nil {
		t.Fatal("unknown design must error, not default")
	}
	if !strings.Contains(err.Error(), "EinsteinBarrier") {
		t.Fatalf("error should list registered names, got: %v", err)
	}
	// An unregistered handle still prints (no inverse — by design).
	if Design(97).String() != "Design(97)" {
		t.Fatalf("unregistered handle prints %q", Design(97).String())
	}
	if _, err := Design(97).Spec(); err == nil {
		t.Fatal("unregistered handle must have no spec")
	}
}

func TestRegisterRejects(t *testing.T) {
	bad := []DesignSpec{
		{},                                    // no name
		{Name: "Baseline-ePCM"},               // duplicate canonical name
		{Name: "x1", Aliases: []string{"EB"}}, // duplicate alias (case-insensitive)
		{Name: "x2", WDM: true, Tech: device.EPCM},      // WDM needs oPCM
		{Name: "x3", WDMCapacity: 8, Tech: device.EPCM}, // capacity without WDM
		{Name: "x4", MLC: &device.MLCParams{Levels: 1}}, // invalid MLC params
	}
	before := len(Designs())
	for i, s := range bad {
		if _, err := Register(s); err == nil {
			t.Errorf("case %d (%q): expected registration error", i, s.Name)
		}
	}
	if len(Designs()) != before {
		t.Fatal("failed registrations must not grow the registry")
	}
}

func TestRegisterExtends(t *testing.T) {
	d, err := Register(DesignSpec{
		Name:    "Test-Tacit-oPCM",
		Aliases: []string{"test-tacit-opcm-alias"},
		Tech:    device.OPCM,
		Mapping: MappingTacit,
		WDM:     true,
		TuneCosts: func(c energy.CostParams) energy.CostParams {
			c.ADCOPJ *= 2
			return c
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "Test-Tacit-oPCM" || d.Tech() != device.OPCM {
		t.Fatalf("registered design misbehaves: %v / %v", d, d.Tech())
	}
	if got, _ := ParseDesign("test-tacit-opcm-alias"); got != d {
		t.Fatal("alias does not resolve")
	}
	spec, err := d.Spec()
	if err != nil {
		t.Fatal(err)
	}
	base := energy.DefaultCostParams()
	if spec.EffectiveCosts(base).ADCOPJ != 2*base.ADCOPJ {
		t.Fatal("cost hook not applied")
	}
}

func TestEffectiveKPerSpec(t *testing.T) {
	c := DefaultConfig()
	if got := c.EffectiveK(EinsteinBarrierK64); got != 64 {
		t.Fatalf("wide-K design must see its own capacity, got %d", got)
	}
	if got := c.EffectiveK(MLCEPCM); got != 1 {
		t.Fatalf("electronic MLC design has no WDM dimension, got %d", got)
	}
	if got := c.EffectiveK(EinsteinBarrier); got != c.WDMCapacity {
		t.Fatalf("EinsteinBarrier must see the architecture K, got %d", got)
	}
}

func TestMLCSpecDensity(t *testing.T) {
	spec, err := MLCEPCM.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.BitsPerCell() != 2 {
		t.Fatalf("4-level cells store 2 bits, got %d", spec.BitsPerCell())
	}
	if spec.MLC.AnalyticErrorRate() > 1e-4 {
		t.Fatalf("registered MLC corner exceeds the robustness budget: %g", spec.MLC.AnalyticErrorRate())
	}
	// The registered level count must be within the robust limit the
	// device model derives — the wiring the design exists to exercise.
	if limit := spec.MLC.RobustLevelLimit(1e-4); limit < spec.MLC.Levels {
		t.Fatalf("4-level operation outside robust limit %d", limit)
	}
}
