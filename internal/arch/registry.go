package arch

import (
	"fmt"
	"strings"

	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/energy"
)

// Design registry. The paper evaluates a fixed set of three CIM designs,
// but the architecture layer itself is open: a design is a DesignSpec —
// device technology, mapping strategy, WDM capability and optional
// architecture/cost hooks — registered under a canonical name. The
// compiler, the simulator, the evaluation harness and both CLIs resolve
// designs through the registry, so adding an accelerator variant is one
// Register call, not an enum surgery across four packages.

// Mapping selects the weight-mapping strategy of a design (paper §III).
type Mapping int

const (
	// MappingCust is CustBinaryMap: 2T2R differential pairs, serial
	// row-step execution with PCSA sensing (the SotA baseline).
	MappingCust Mapping = iota
	// MappingTacit is TacitMap: [w;¬w] column pairs executed as one
	// analog VMM per input (or one MMM per K inputs on WDM designs).
	MappingTacit
)

// String implements fmt.Stringer.
func (m Mapping) String() string {
	switch m {
	case MappingCust:
		return "CustBinaryMap"
	case MappingTacit:
		return "TacitMap"
	default:
		return fmt.Sprintf("Mapping(%d)", int(m))
	}
}

// DesignSpec describes one accelerator design point.
type DesignSpec struct {
	// Name is the canonical, unique design name — also the string form
	// of the registered Design (see Design.String / ParseDesign).
	Name string
	// Aliases are additional accepted spellings (CLI shorthands).
	// Matching is case-insensitive for both names and aliases.
	Aliases []string
	// Tech is the VCore device technology.
	Tech device.Technology
	// Mapping is the weight-mapping strategy of the binary layers.
	Mapping Mapping
	// WDM marks designs whose ISA includes the MMM instruction
	// (wavelength-multiplexed batching; requires optical VCores).
	WDM bool
	// WDMCapacity, when > 0, overrides Config.WDMCapacity for this
	// design (wide-K variants). Ignored unless WDM is set.
	WDMCapacity int
	// MLC, when non-nil, runs the design's high-precision layers on
	// multi-level cells: each device stores MLC.Levels levels, so one
	// cell holds BitsPerCell weight-bit slices (device/mlc.go). Binary
	// layers keep the robust two-level [w;¬w] mapping regardless.
	MLC *device.MLCParams
	// TuneArch, when non-nil, adapts the shared architecture
	// configuration for this design (geometry hooks).
	TuneArch func(Config) Config
	// TuneCosts, when non-nil, adapts the shared cost table for this
	// design (cost hooks — e.g. a higher-resolution readout for MLC).
	TuneCosts func(energy.CostParams) energy.CostParams
}

// Validate checks the spec before registration.
func (s DesignSpec) Validate() error {
	switch {
	case strings.TrimSpace(s.Name) == "":
		return fmt.Errorf("arch: design spec needs a name")
	case s.WDM && s.Tech != device.OPCM:
		return fmt.Errorf("arch: design %q: WDM batching requires oPCM VCores", s.Name)
	case s.WDMCapacity < 0:
		return fmt.Errorf("arch: design %q: negative WDM capacity", s.Name)
	case s.WDMCapacity > 0 && !s.WDM:
		return fmt.Errorf("arch: design %q: WDMCapacity set on a non-WDM design", s.Name)
	}
	if s.MLC != nil {
		if err := s.MLC.Validate(); err != nil {
			return fmt.Errorf("arch: design %q: %w", s.Name, err)
		}
	}
	return nil
}

// BitsPerCell is the number of weight-bit slices one device stores in
// the design's high-precision layers: 1 for binary cells, log2(Levels)
// for multi-level cells.
func (s DesignSpec) BitsPerCell() int {
	if s.MLC == nil {
		return 1
	}
	return s.MLC.BitsPerCell()
}

// EffectiveArch applies the design's architecture hook.
func (s DesignSpec) EffectiveArch(cfg Config) Config {
	if s.TuneArch != nil {
		return s.TuneArch(cfg)
	}
	return cfg
}

// EffectiveCosts applies the design's cost hook.
func (s DesignSpec) EffectiveCosts(c energy.CostParams) energy.CostParams {
	if s.TuneCosts != nil {
		return s.TuneCosts(c)
	}
	return c
}

// --- registry ------------------------------------------------------------

var (
	specs  []DesignSpec
	byName = map[string]Design{}
)

// Register adds a design spec and returns its Design handle. The name
// and every alias must be new (case-insensitive).
func Register(s DesignSpec) (Design, error) {
	if err := s.Validate(); err != nil {
		return -1, err
	}
	keys := append([]string{s.Name}, s.Aliases...)
	for _, k := range keys {
		if prev, ok := byName[strings.ToLower(k)]; ok {
			return -1, fmt.Errorf("arch: design name %q already registered to %v", k, prev)
		}
	}
	d := Design(len(specs))
	specs = append(specs, s)
	for _, k := range keys {
		byName[strings.ToLower(k)] = d
	}
	return d, nil
}

// MustRegister is Register that panics on error — for package-level
// design declarations.
func MustRegister(s DesignSpec) Design {
	d, err := Register(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Spec returns the registered spec of a design.
func (d Design) Spec() (DesignSpec, error) {
	if int(d) < 0 || int(d) >= len(specs) {
		return DesignSpec{}, fmt.Errorf("arch: unknown design Design(%d)", int(d))
	}
	return specs[d], nil
}

// ParseDesign resolves a design name or alias (case-insensitive). It
// returns an error — never a default — on unknown names; the error
// lists the registered names.
func ParseDesign(name string) (Design, error) {
	if d, ok := byName[strings.ToLower(strings.TrimSpace(name))]; ok {
		return d, nil
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return -1, fmt.Errorf("arch: unknown design %q (registered: %s)", name, strings.Join(names, ", "))
}

// Designs returns every registered design in registration order.
func Designs() []Design {
	out := make([]Design, len(specs))
	for i := range specs {
		out[i] = Design(i)
	}
	return out
}

// --- built-in designs ----------------------------------------------------

// mlc4 is the four-level population backing MLCEPCM, at the default
// binary-range spread (DefaultMLCParams keeps its analytic decode error
// well below the 1e-4 robustness budget — see RobustLevelLimit).
// Declared before the design block so registration order is the
// declaration order below.
var mlc4 = device.DefaultMLCParams(4)

// The paper's three CIM designs (§V-B) occupy the first three registry
// slots so the Design constants in arch.go stay valid handles.
var (
	_ = mustRegisterAt(BaselineEPCM, DesignSpec{
		Name:    "Baseline-ePCM",
		Aliases: []string{"baseline", "cust"},
		Tech:    device.EPCM,
		Mapping: MappingCust,
	})
	_ = mustRegisterAt(TacitEPCM, DesignSpec{
		Name:    "TacitMap-ePCM",
		Aliases: []string{"tacit"},
		Tech:    device.EPCM,
		Mapping: MappingTacit,
	})
	_ = mustRegisterAt(EinsteinBarrier, DesignSpec{
		Name:    "EinsteinBarrier",
		Aliases: []string{"eb"},
		Tech:    device.OPCM,
		Mapping: MappingTacit,
		WDM:     true,
	})

	// MLCEPCM is TacitMap on four-level ePCM cells: high-precision
	// layers pack two weight-bit slices per device (half the FP tiles
	// and weight writes), paid for with a finer readout — the MLC
	// decode-window analysis in device/mlc.go prices the level count,
	// and the cost hook charges a higher-resolution ADC (2× energy,
	// 1.5× conversion latency). Binary layers keep the two-level
	// mapping, preserving the paper's §II-C robustness argument.
	MLCEPCM = MustRegister(DesignSpec{
		Name:    "MLC-ePCM",
		Aliases: []string{"mlc"},
		Tech:    device.EPCM,
		Mapping: MappingTacit,
		MLC:     &mlc4,
		TuneCosts: func(c energy.CostParams) energy.CostParams {
			return c.WithADCResolutionScale(1.5, 2)
		},
	})

	// EinsteinBarrierK64 is the wide-K variant: a 64-wavelength comb
	// (4× the evaluation default) batching 64 positions per MMM. The
	// transmitter power of Eq. (3) grows with K through EffectiveK, so
	// the latency gain on convolutional layers is bought with optical
	// static energy.
	EinsteinBarrierK64 = MustRegister(DesignSpec{
		Name:        "EinsteinBarrier-K64",
		Aliases:     []string{"eb64", "wide-k"},
		Tech:        device.OPCM,
		Mapping:     MappingTacit,
		WDM:         true,
		WDMCapacity: 64,
	})
)

// mustRegisterAt registers a built-in spec and asserts it lands on its
// reserved Design constant.
func mustRegisterAt(want Design, s DesignSpec) Design {
	d := MustRegister(s)
	if d != want {
		panic(fmt.Sprintf("arch: built-in design %q registered as %d, want %d", s.Name, d, want))
	}
	return d
}
