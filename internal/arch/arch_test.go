package arch

import (
	"testing"
	"testing/quick"

	"einsteinbarrier/internal/device"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.TilesPerNode = 0 },
		func(c *Config) { c.VCoresPerECore = 0 },
		func(c *Config) { c.CrossbarRows = 255 }, // odd
		func(c *Config) { c.ColumnsPerADC = 1024 },
		func(c *Config) { c.WDMCapacity = 0 },
		func(c *Config) { c.InputBits = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestDesignStringsAndTech(t *testing.T) {
	if BaselineEPCM.String() != "Baseline-ePCM" ||
		TacitEPCM.String() != "TacitMap-ePCM" ||
		EinsteinBarrier.String() != "EinsteinBarrier" {
		t.Fatal("design names wrong")
	}
	if BaselineEPCM.Tech() != device.EPCM || TacitEPCM.Tech() != device.EPCM {
		t.Fatal("electronic designs must be ePCM")
	}
	if EinsteinBarrier.Tech() != device.OPCM {
		t.Fatal("EinsteinBarrier must be oPCM")
	}
	if Design(9).String() == "" {
		t.Fatal("unknown design should print")
	}
}

func TestHierarchyCounts(t *testing.T) {
	c := DefaultConfig()
	if c.TotalTiles() != 64 {
		t.Fatalf("TotalTiles = %d", c.TotalTiles())
	}
	if c.TotalECores() != 512 {
		t.Fatalf("TotalECores = %d", c.TotalECores())
	}
	if c.TotalVCores() != 4096 {
		t.Fatalf("TotalVCores = %d", c.TotalVCores())
	}
	if c.CellsPerVCore() != 65536 {
		t.Fatalf("CellsPerVCore = %d", c.CellsPerVCore())
	}
	if c.MeshWidth() != 4 {
		t.Fatalf("MeshWidth = %d", c.MeshWidth())
	}
	wantBits := int64(4096) * 65536 / 2
	if c.WeightCapacityBits() != wantBits {
		t.Fatalf("WeightCapacityBits = %d, want %d", c.WeightCapacityBits(), wantBits)
	}
}

func TestEffectiveK(t *testing.T) {
	c := DefaultConfig()
	if c.EffectiveK(BaselineEPCM) != 1 || c.EffectiveK(TacitEPCM) != 1 {
		t.Fatal("electronic designs have no WDM dimension")
	}
	if c.EffectiveK(EinsteinBarrier) != c.WDMCapacity {
		t.Fatal("EinsteinBarrier must see full K")
	}
}

func TestVCoreIndexRoundTrip(t *testing.T) {
	c := DefaultConfig()
	f := func(raw uint16) bool {
		i := int(raw) % c.TotalVCores()
		id, err := c.VCoreByIndex(i)
		if err != nil {
			return false
		}
		back, err := c.Index(id)
		return err == nil && back == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVCoreIndexErrors(t *testing.T) {
	c := DefaultConfig()
	if _, err := c.VCoreByIndex(-1); err == nil {
		t.Fatal("negative index should fail")
	}
	if _, err := c.VCoreByIndex(c.TotalVCores()); err == nil {
		t.Fatal("overflow index should fail")
	}
	if _, err := c.Index(VCoreID{Node: c.Nodes}); err == nil {
		t.Fatal("bad id should fail")
	}
}

func TestVCoreByIndexStructure(t *testing.T) {
	c := DefaultConfig()
	id, err := c.VCoreByIndex(c.VCoresPerECore) // first VCore of second ECore
	if err != nil {
		t.Fatal(err)
	}
	if id.VCore != 0 || id.ECore != 1 || id.Tile != 0 || id.Node != 0 {
		t.Fatalf("id = %+v", id)
	}
}
