// Package cpu detects the host SIMD features that gate the hand-written
// assembly kernels in internal/tensor and internal/bitops. Detection
// runs once at init; on non-amd64 builds every flag stays false and the
// kernels fall back to their portable Go bodies, which compute the same
// results bit for bit.
package cpu

var (
	// HasAVX512F reports AVX-512 Foundation support with the OS saving
	// ZMM/opmask state (OSXSAVE + XCR0 bits 1,2,5,6,7).
	HasAVX512F bool
	// HasAVX512VPOPCNTDQ reports the VPOPCNTQ/VPOPCNTD instructions
	// (implies HasAVX512F here — it is only set when AVX-512F is usable).
	HasAVX512VPOPCNTDQ bool
)
