package cpu

import "testing"

// TestFlagsConsistent pins the one invariant the dispatchers rely on:
// VPOPCNTDQ is only reported on top of a usable AVX-512F baseline.
func TestFlagsConsistent(t *testing.T) {
	if HasAVX512VPOPCNTDQ && !HasAVX512F {
		t.Fatalf("HasAVX512VPOPCNTDQ without HasAVX512F")
	}
	t.Logf("AVX512F=%v VPOPCNTDQ=%v", HasAVX512F, HasAVX512VPOPCNTDQ)
}
