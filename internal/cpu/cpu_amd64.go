package cpu

// cpuid and xgetbv are implemented in cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

func init() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return
	}
	// XCR0: SSE+AVX state (bits 1,2) and opmask+ZMM state (bits 5,6,7)
	// must all be OS-enabled before any EVEX instruction is legal.
	const avxState = 0x6
	const avx512State = 0xe0
	xcr0, _ := xgetbv()
	if xcr0&avxState != avxState || xcr0&avx512State != avx512State {
		return
	}
	_, b7, c7, _ := cpuid(7, 0)
	HasAVX512F = b7&(1<<16) != 0
	HasAVX512VPOPCNTDQ = HasAVX512F && c7&(1<<14) != 0
}
