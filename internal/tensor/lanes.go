package tensor

import "fmt"

// Batch-major float lanes: the software batch path carries up to
// LaneWidth samples side by side, with feature f of sample s stored at
// data[f*LaneWidth+s]. One dense output neuron then reduces over
// features with a single multiply-add per feature applied to all lanes
// at once — the float counterpart of packing 64 binary samples into one
// uint64 word.

// LaneWidth is the fixed sample-lane count of the batch-major forward
// path (matches the 64-bit word width of the bit-packed layers).
const LaneWidth = 64

// DenseLanesInto accumulates one dense output neuron over all lanes:
//
//	acc[s] += row[f] · x[f*LaneWidth+s]   for every feature f, lane s
//
// acc must have length LaneWidth and x length len(row)*LaneWidth. The
// per-lane operation sequence — one multiply and one add per feature, in
// ascending feature order — is exactly the scalar DenseFP inner loop, so
// every lane is bit-identical to the per-sample path; the AVX-512
// variant performs the same IEEE operations elementwise and preserves
// that identity.
func DenseLanesInto(acc, x, row []float64) {
	if len(acc) != LaneWidth {
		panic(fmt.Sprintf("tensor: DenseLanesInto acc length %d, want %d", len(acc), LaneWidth))
	}
	if len(x) != len(row)*LaneWidth {
		panic(fmt.Sprintf("tensor: DenseLanesInto x length %d, want %d", len(x), len(row)*LaneWidth))
	}
	if len(row) == 0 {
		return
	}
	denseLanesImpl(acc, x, row)
}

// denseLanesImpl is swapped to the AVX-512 kernel at init on capable
// amd64 hosts; tests point it back at denseLanesGeneric to pin both
// paths against each other.
var denseLanesImpl = denseLanesGeneric

func denseLanesGeneric(acc, x, row []float64) {
	a := acc[:LaneWidth:LaneWidth]
	for f, w := range row {
		xf := x[f*LaneWidth : f*LaneWidth+LaneWidth : f*LaneWidth+LaneWidth]
		for s := range a {
			a[s] += w * xf[s]
		}
	}
}
