package tensor

import (
	"math/rand"
	"testing"
)

// refLanes runs the scalar per-sample DenseFP inner loop for each lane.
func refLanes(acc, x, row []float64) {
	for s := 0; s < LaneWidth; s++ {
		v := acc[s]
		for f := range row {
			v += row[f] * x[f*LaneWidth+s]
		}
		acc[s] = v
	}
}

// TestDenseLanesBitIdentical pins both the dispatched kernel (asm on
// capable hosts) and the generic fallback to the scalar reference,
// bit for bit, across feature counts including zero.
func TestDenseLanesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, nfeat := range []int{0, 1, 2, 7, 64, 127, 784} {
		x := make([]float64, nfeat*LaneWidth)
		row := make([]float64, nfeat)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		want := make([]float64, LaneWidth)
		got := make([]float64, LaneWidth)
		gotGen := make([]float64, LaneWidth)
		for s := range want {
			v := rng.NormFloat64()
			want[s], got[s], gotGen[s] = v, v, v
		}
		refLanes(want, x, row)
		DenseLanesInto(got, x, row)
		denseLanesGeneric(gotGen, x, row)
		for s := 0; s < LaneWidth; s++ {
			if got[s] != want[s] {
				t.Fatalf("nfeat=%d lane %d: dispatched %v, scalar reference %v", nfeat, s, got[s], want[s])
			}
			if gotGen[s] != want[s] {
				t.Fatalf("nfeat=%d lane %d: generic %v, scalar reference %v", nfeat, s, gotGen[s], want[s])
			}
		}
	}
}

// TestDenseLanesPanics pins the argument validation.
func TestDenseLanesPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("short acc", func() {
		DenseLanesInto(make([]float64, 8), make([]float64, LaneWidth), make([]float64, 1))
	})
	mustPanic("x/row mismatch", func() {
		DenseLanesInto(make([]float64, LaneWidth), make([]float64, LaneWidth), make([]float64, 2))
	})
}

func BenchmarkDenseLanes(b *testing.B) {
	const nfeat = 784
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, nfeat*LaneWidth)
	row := make([]float64, nfeat)
	acc := make([]float64, LaneWidth)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range row {
		row[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DenseLanesInto(acc, x, row)
	}
}
