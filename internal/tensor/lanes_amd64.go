package tensor

import "einsteinbarrier/internal/cpu"

// denseLanesAVX512 is implemented in lanes_amd64.s: eight ZMM
// accumulators hold the 64 lanes, and each feature contributes one
// broadcast multiply + add per register, in feature order.
//
//go:noescape
func denseLanesAVX512(acc, x, row *float64, nfeat int)

func denseLanesAsm(acc, x, row []float64) {
	denseLanesAVX512(&acc[0], &x[0], &row[0], len(row))
}

func init() {
	if cpu.HasAVX512F {
		denseLanesImpl = denseLanesAsm
	}
}
