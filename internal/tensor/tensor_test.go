package tensor

import (
	"math/rand"
	"testing"
)

func TestNewFloatShapeSize(t *testing.T) {
	x := NewFloat(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d", x.Size())
	}
	s := x.Shape()
	if len(s) != 3 || s[0] != 2 || s[1] != 3 || s[2] != 4 {
		t.Fatalf("Shape = %v", s)
	}
	// Shape must be a copy.
	s[0] = 99
	if x.Shape()[0] != 2 {
		t.Fatal("Shape leaked internal slice")
	}
}

func TestNewFloatBadDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFloat(2, 0)
}

func TestAtSetRowMajor(t *testing.T) {
	x := NewFloat(2, 3)
	x.Set(7, 1, 2)
	if x.At(1, 2) != 7 {
		t.Fatal("At/Set broken")
	}
	if x.Data()[5] != 7 { // row-major: 1*3+2
		t.Fatal("layout not row-major")
	}
}

func TestAtPanics(t *testing.T) {
	x := NewFloat(2, 3)
	for _, idx := range [][]int{{2, 0}, {0, 3}, {-1, 0}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestFromSliceAndReshape(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Fatal("reshape broke layout")
	}
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape should share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	x.Reshape(5)
}

func TestCloneIndependent(t *testing.T) {
	x := NewFloat(4)
	c := x.Clone()
	c.Set(1, 0)
	if x.At(0) != 0 {
		t.Fatal("clone shares storage")
	}
}

func TestFillArgMax(t *testing.T) {
	x := NewFloat(5)
	x.Fill(-2)
	x.Set(3, 2)
	if x.ArgMax() != 2 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
}

func TestConvGeomValidate(t *testing.T) {
	good := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ConvGeom{
		{InC: 0, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1},
		{InC: 1, InH: 8, InW: 8, KH: 0, KW: 3, StrideH: 1, StrideW: 1},
		{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 0, StrideW: 1},
		{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: -1},
		{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, StrideH: 1, StrideW: 1}, // empty out
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestConvGeomDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if g.OutH() != 32 || g.OutW() != 32 {
		t.Fatalf("same-pad output %dx%d", g.OutH(), g.OutW())
	}
	if g.PatchLen() != 27 || g.Positions() != 1024 {
		t.Fatalf("patch %d positions %d", g.PatchLen(), g.Positions())
	}
	g2 := ConvGeom{InC: 1, InH: 28, InW: 28, KH: 5, KW: 5, StrideH: 1, StrideW: 1}
	if g2.OutH() != 24 || g2.OutW() != 24 {
		t.Fatalf("valid-pad output %dx%d", g2.OutH(), g2.OutW())
	}
}

func TestIm2ColManual(t *testing.T) {
	// 1×3×3 input, 2×2 kernel, stride 1, no pad → 4 patches of 4.
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	cols := g.Im2Col(x)
	want := [][]float64{
		{1, 2, 4, 5}, {2, 3, 5, 6}, {4, 5, 7, 8}, {5, 6, 8, 9},
	}
	for p := range want {
		for c := range want[p] {
			if cols.At(p, c) != want[p][c] {
				t.Fatalf("patch %d col %d = %g, want %g", p, c, cols.At(p, c), want[p][c])
			}
		}
	}
}

func TestIm2ColPaddingZero(t *testing.T) {
	x := NewFloat(1, 2, 2)
	x.Fill(1)
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	cols := g.Im2Col(x)
	// First patch (centered at 0,0): corners outside → zeros.
	if cols.At(0, 0) != 0 {
		t.Fatal("padding should read zero")
	}
	if cols.At(0, 4) != 1 { // center = x[0,0]
		t.Fatal("center element wrong")
	}
}

func TestIm2ColConvEquivalence(t *testing.T) {
	// A float convolution done via im2col + dot must equal the direct
	// nested-loop convolution.
	rng := rand.New(rand.NewSource(6))
	g := ConvGeom{InC: 2, InH: 6, InW: 7, KH: 3, KW: 3, StrideH: 2, StrideW: 1, PadH: 1, PadW: 0}
	x := NewFloat(g.InC, g.InH, g.InW)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	kernel := make([]float64, g.PatchLen())
	for i := range kernel {
		kernel[i] = rng.NormFloat64()
	}
	cols := g.Im2Col(x)
	pos := 0
	for oh := 0; oh < g.OutH(); oh++ {
		for ow := 0; ow < g.OutW(); ow++ {
			direct := 0.0
			k := 0
			for c := 0; c < g.InC; c++ {
				for kh := 0; kh < g.KH; kh++ {
					for kw := 0; kw < g.KW; kw++ {
						ih := oh*g.StrideH + kh - g.PadH
						iw := ow*g.StrideW + kw - g.PadW
						if ih >= 0 && ih < g.InH && iw >= 0 && iw < g.InW {
							direct += kernel[k] * x.At(c, ih, iw)
						}
						k++
					}
				}
			}
			viaCols := 0.0
			for c := 0; c < g.PatchLen(); c++ {
				viaCols += kernel[c] * cols.At(pos, c)
			}
			if diff := direct - viaCols; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("pos %d: direct %g vs im2col %g", pos, direct, viaCols)
			}
			pos++
		}
	}
}

func TestIm2ColShapeMismatchPanics(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Im2Col(NewFloat(2, 3, 3))
}
