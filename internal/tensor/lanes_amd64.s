#include "textflag.h"

// func denseLanesAVX512(acc, x, row *float64, nfeat int)
//
// acc[0:64] += row[f] * x[f*64 : f*64+64] for f in [0, nfeat).
// The 64 lanes live in Z0-Z7 for the whole reduction; each feature is
// one VBROADCASTSD plus eight VMULPD+VADDPD pairs. Elementwise IEEE
// mul-then-add matches the scalar path exactly (no FMA contraction).
TEXT ·denseLanesAVX512(SB), NOSPLIT, $0-32
	MOVQ acc+0(FP), AX
	MOVQ x+8(FP), BX
	MOVQ row+16(FP), CX
	MOVQ nfeat+24(FP), DX
	VMOVUPD (AX), Z0
	VMOVUPD 64(AX), Z1
	VMOVUPD 128(AX), Z2
	VMOVUPD 192(AX), Z3
	VMOVUPD 256(AX), Z4
	VMOVUPD 320(AX), Z5
	VMOVUPD 384(AX), Z6
	VMOVUPD 448(AX), Z7
loop:
	TESTQ DX, DX
	JZ   done
	VBROADCASTSD (CX), Z8
	VMULPD (BX), Z8, Z9
	VADDPD Z9, Z0, Z0
	VMULPD 64(BX), Z8, Z10
	VADDPD Z10, Z1, Z1
	VMULPD 128(BX), Z8, Z11
	VADDPD Z11, Z2, Z2
	VMULPD 192(BX), Z8, Z12
	VADDPD Z12, Z3, Z3
	VMULPD 256(BX), Z8, Z13
	VADDPD Z13, Z4, Z4
	VMULPD 320(BX), Z8, Z14
	VADDPD Z14, Z5, Z5
	VMULPD 384(BX), Z8, Z15
	VADDPD Z15, Z6, Z6
	VMULPD 448(BX), Z8, Z16
	VADDPD Z16, Z7, Z7
	ADDQ $8, CX
	ADDQ $512, BX
	DECQ DX
	JMP  loop
done:
	VMOVUPD Z0, (AX)
	VMOVUPD Z1, 64(AX)
	VMOVUPD Z2, 128(AX)
	VMOVUPD Z3, 192(AX)
	VMOVUPD Z4, 256(AX)
	VMOVUPD Z5, 320(AX)
	VMOVUPD Z6, 384(AX)
	VMOVUPD Z7, 448(AX)
	VZEROUPPER
	RET
