// Package tensor provides the small dense-tensor substrate the BNN
// framework is built on: float tensors with shape bookkeeping, and the
// im2col transform that turns convolutions into the matrix-vector form
// both crossbar mappings consume.
package tensor

import (
	"fmt"
	"math"
)

// Float is a dense row-major float64 tensor.
type Float struct {
	shape []int
	data  []float64
}

// NewFloat allocates a zero tensor with the given shape. Panics on a
// non-positive dimension.
func NewFloat(shape ...int) *Float {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Float{shape: s, data: make([]float64, n)}
}

// FromSlice wraps data (not copied) with the given shape; the element
// count must match.
func FromSlice(data []float64, shape ...int) *Float {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: %d elements for shape %v (want %d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Float{shape: s, data: data}
}

// Shape returns a copy of the tensor shape.
func (t *Float) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// Size returns the total element count.
func (t *Float) Size() int { return len(t.data) }

// Dims returns the rank of the tensor without copying the shape.
func (t *Float) Dims() int { return len(t.shape) }

// Dim returns the size of axis i without copying the shape.
func (t *Float) Dim(i int) int { return t.shape[i] }

// SameShape reports whether t and u have identical shapes.
func (t *Float) SameShape(u *Float) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i, d := range t.shape {
		if u.shape[i] != d {
			return false
		}
	}
	return true
}

// Data exposes the backing slice (row-major).
func (t *Float) Data() []float64 { return t.data }

// offset computes the flat index of the given coordinates.
func (t *Float) offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) at axis %d", x, t.shape[i], i))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the coordinates.
func (t *Float) At(idx ...int) float64 { return t.data[t.offset(idx...)] }

// Set stores v at the coordinates.
func (t *Float) Set(v float64, idx ...int) { t.data[t.offset(idx...)] = v }

// Clone deep-copies the tensor.
func (t *Float) Clone() *Float {
	c := NewFloat(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view with a new shape of equal size.
func (t *Float) Reshape(shape ...int) *Float {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.shape, len(t.data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Float{shape: s, data: t.data}
}

// Alias points t at src's backing data with the given shape, without
// copying; the element count must match src. It reuses t's shape slice
// when capacity allows, so steady-state calls allocate nothing. The
// zero value of Float is a valid Alias destination.
func (t *Float) Alias(src *Float, shape ...int) *Float {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(src.data) {
		panic(fmt.Sprintf("tensor: cannot alias %d elements as %v", len(src.data), shape))
	}
	if cap(t.shape) >= len(shape) {
		t.shape = t.shape[:len(shape)]
		copy(t.shape, shape)
	} else {
		t.shape = append([]int(nil), shape...)
	}
	t.data = src.data
	return t
}

// Fill sets every element to v.
func (t *Float) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// ArgMax returns the flat index of the maximum element (first on ties).
func (t *Float) ArgMax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// ConvGeom describes a 2-D convolution geometry over CHW tensors.
type ConvGeom struct {
	InC, InH, InW    int
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
}

// Validate checks the geometry.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC < 1 || g.InH < 1 || g.InW < 1:
		return fmt.Errorf("tensor: bad input dims %dx%dx%d", g.InC, g.InH, g.InW)
	case g.KH < 1 || g.KW < 1:
		return fmt.Errorf("tensor: bad kernel %dx%d", g.KH, g.KW)
	case g.StrideH < 1 || g.StrideW < 1:
		return fmt.Errorf("tensor: bad stride %dx%d", g.StrideH, g.StrideW)
	case g.PadH < 0 || g.PadW < 0:
		return fmt.Errorf("tensor: negative padding")
	}
	if g.OutH() < 1 || g.OutW() < 1 {
		return fmt.Errorf("tensor: empty output %dx%d", g.OutH(), g.OutW())
	}
	return nil
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// PatchLen returns the im2col patch length InC·KH·KW — the "vector
// length" m of the XNOR+Popcount workload a conv layer generates.
func (g ConvGeom) PatchLen() int { return g.InC * g.KH * g.KW }

// Positions returns OutH·OutW — how many patch vectors one input image
// yields, i.e. the WDM batching opportunity of the layer.
func (g ConvGeom) Positions() int { return g.OutH() * g.OutW() }

// Im2Col extracts all patches of x (shape C×H×W) as a Positions ×
// PatchLen row-major matrix. Padding reads as zero.
func (g ConvGeom) Im2Col(x *Float) *Float { return g.Im2ColInto(x, nil) }

// Im2ColInto is the allocation-free form of Im2Col: it writes the patch
// matrix into dst, which must hold Positions·PatchLen elements (nil
// allocates a fresh Positions × PatchLen tensor).
func (g ConvGeom) Im2ColInto(x, dst *Float) *Float {
	if len(x.shape) != 3 || x.shape[0] != g.InC || x.shape[1] != g.InH || x.shape[2] != g.InW {
		panic(fmt.Sprintf("tensor: im2col input %v does not match geom %dx%dx%d",
			x.shape, g.InC, g.InH, g.InW))
	}
	if dst == nil {
		dst = NewFloat(g.Positions(), g.PatchLen())
	} else if dst.Size() != g.Positions()*g.PatchLen() {
		panic(fmt.Sprintf("tensor: im2col dst has %d elements, want %d",
			dst.Size(), g.Positions()*g.PatchLen()))
	}
	xd, od := x.data, dst.data
	i := 0
	for oh := 0; oh < g.OutH(); oh++ {
		for ow := 0; ow < g.OutW(); ow++ {
			for c := 0; c < g.InC; c++ {
				for kh := 0; kh < g.KH; kh++ {
					ih := oh*g.StrideH + kh - g.PadH
					if ih < 0 || ih >= g.InH {
						for kw := 0; kw < g.KW; kw++ {
							od[i] = 0
							i++
						}
						continue
					}
					rowBase := (c*g.InH + ih) * g.InW
					for kw := 0; kw < g.KW; kw++ {
						iw := ow*g.StrideW + kw - g.PadW
						if iw >= 0 && iw < g.InW {
							od[i] = xd[rowBase+iw]
						} else {
							od[i] = 0
						}
						i++
					}
				}
			}
		}
	}
	return dst
}
