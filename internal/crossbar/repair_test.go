package crossbar

import (
	"testing"

	"einsteinbarrier/internal/device"
)

func faultyArray(t *testing.T, rate float64) *Array {
	t.Helper()
	cfg := smallConfig(device.EPCM, true, 0)
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arr.InjectFaults(FaultModel{StuckOnRate: rate / 2, StuckOffRate: rate / 2, Seed: 17}); err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestPlanRepairBounds(t *testing.T) {
	arr := faultyArray(t, 0.1)
	if _, err := arr.PlanRepair(-1); err == nil {
		t.Fatal("negative usedCols should fail")
	}
	if _, err := arr.PlanRepair(arr.Cols() + 1); err == nil {
		t.Fatal("oversized usedCols should fail")
	}
}

func TestRepairRetiresWorstColumns(t *testing.T) {
	arr := faultyArray(t, 0.15)
	used := arr.Cols() - 8 // 8 spares
	plan, err := arr.PlanRepair(used)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spares != 8 {
		t.Fatalf("spares = %d", plan.Spares)
	}
	if len(plan.Remapped) == 0 || len(plan.Remapped) > 8 {
		t.Fatalf("remapped %d columns with 8 spares", len(plan.Remapped))
	}
	before, after, err := arr.RepairEffectiveness(used, plan)
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Fatalf("repair made things worse: %d → %d", before, after)
	}
	if before > 0 && after == before && len(plan.Remapped) == 8 {
		// With the worst columns retired the residual must improve
		// unless all columns were equally bad (vanishingly unlikely at
		// this density and size).
		t.Fatalf("retiring 8 worst columns did not improve worst case (%d)", before)
	}
}

func TestColumnMapSkipsRetired(t *testing.T) {
	arr := faultyArray(t, 0.2)
	used := arr.Cols() - 4
	plan, err := arr.PlanRepair(used)
	if err != nil {
		t.Fatal(err)
	}
	colMap, err := arr.ColumnMap(used, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(colMap) != used {
		t.Fatalf("column map has %d entries, want %d", len(colMap), used)
	}
	retired := make(map[int]bool)
	for _, c := range plan.Remapped {
		retired[c] = true
	}
	seen := make(map[int]bool)
	for _, c := range colMap {
		if retired[c] {
			t.Fatalf("retired column %d still in service", c)
		}
		if seen[c] {
			t.Fatalf("column %d assigned twice", c)
		}
		seen[c] = true
	}
}

func TestColumnMapErrsWhenOverRetired(t *testing.T) {
	arr := faultyArray(t, 0.1)
	plan := RepairPlan{Remapped: []int{0, 1, 2, 3}}
	if _, err := arr.ColumnMap(arr.Cols(), plan); err == nil {
		t.Fatal("expected error: all columns used but 4 retired")
	}
}

func TestRepairNoFaultsNoop(t *testing.T) {
	cfg := smallConfig(device.EPCM, true, 0)
	arr, _ := NewArray(cfg)
	plan, err := arr.PlanRepair(arr.Cols() - 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Remapped) != 0 || plan.ResidualWorst != 0 {
		t.Fatalf("healthy array produced repairs: %+v", plan)
	}
}
