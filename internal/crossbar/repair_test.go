package crossbar

import (
	"testing"

	"einsteinbarrier/internal/device"
)

func faultyArray(t *testing.T, rate float64) *Array {
	t.Helper()
	cfg := smallConfig(device.EPCM, true, 0)
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arr.InjectFaults(FaultModel{StuckOnRate: rate / 2, StuckOffRate: rate / 2, Seed: 17}); err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestPlanRepairBounds(t *testing.T) {
	arr := faultyArray(t, 0.1)
	if _, err := arr.PlanRepair(-1); err == nil {
		t.Fatal("negative usedCols should fail")
	}
	if _, err := arr.PlanRepair(arr.Cols() + 1); err == nil {
		t.Fatal("oversized usedCols should fail")
	}
}

func TestRepairRetiresWorstColumns(t *testing.T) {
	arr := faultyArray(t, 0.15)
	used := arr.Cols() - 8 // 8 spares
	plan, err := arr.PlanRepair(used)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spares != 8 {
		t.Fatalf("spares = %d", plan.Spares)
	}
	if len(plan.Remapped) == 0 || len(plan.Remapped) > 8 {
		t.Fatalf("remapped %d columns with 8 spares", len(plan.Remapped))
	}
	before, after, err := arr.RepairEffectiveness(used, plan)
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Fatalf("repair made things worse: %d → %d", before, after)
	}
	if before > 0 && after == before && len(plan.Remapped) == 8 {
		// With the worst columns retired the residual must improve
		// unless all columns were equally bad (vanishingly unlikely at
		// this density and size).
		t.Fatalf("retiring 8 worst columns did not improve worst case (%d)", before)
	}
}

func TestColumnMapSkipsRetired(t *testing.T) {
	arr := faultyArray(t, 0.2)
	used := arr.Cols() - 4
	plan, err := arr.PlanRepair(used)
	if err != nil {
		t.Fatal(err)
	}
	colMap, err := arr.ColumnMap(used, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(colMap) != used {
		t.Fatalf("column map has %d entries, want %d", len(colMap), used)
	}
	retired := make(map[int]bool)
	for _, c := range plan.Remapped {
		retired[c] = true
	}
	seen := make(map[int]bool)
	for _, c := range colMap {
		if retired[c] {
			t.Fatalf("retired column %d still in service", c)
		}
		if seen[c] {
			t.Fatalf("column %d assigned twice", c)
		}
		seen[c] = true
	}
}

func TestColumnMapErrsWhenOverRetired(t *testing.T) {
	arr := faultyArray(t, 0.1)
	plan := RepairPlan{Remapped: []int{0, 1, 2, 3}}
	if _, err := arr.ColumnMap(arr.Cols(), plan); err == nil {
		t.Fatal("expected error: all columns used but 4 retired")
	}
}

func TestRepairNoFaultsNoop(t *testing.T) {
	cfg := smallConfig(device.EPCM, true, 0)
	arr, _ := NewArray(cfg)
	plan, err := arr.PlanRepair(arr.Cols() - 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Remapped) != 0 || plan.ResidualWorst != 0 {
		t.Fatalf("healthy array produced repairs: %+v", plan)
	}
}

func TestPlanRepairResidualWorstWhenSparesRunOut(t *testing.T) {
	arr := faultyArray(t, 0.3)
	// One spare: every defective column but the worst stays in service.
	used := arr.Cols() - 1
	plan, err := arr.PlanRepair(used)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Remapped) != 1 {
		t.Fatalf("remapped %d columns with one spare", len(plan.Remapped))
	}
	if plan.ResidualWorst <= 0 {
		t.Fatalf("dense faults with one spare must leave residual defects: %+v", plan)
	}
	before, after, err := arr.RepairEffectiveness(used, plan)
	if err != nil {
		t.Fatal(err)
	}
	if after != plan.ResidualWorst {
		t.Fatalf("effectiveness after=%d disagrees with plan residual %d", after, plan.ResidualWorst)
	}
	if before < after {
		t.Fatalf("repair made things worse: %d → %d", before, after)
	}
}

func TestPlanRepairZeroUsedCols(t *testing.T) {
	arr := faultyArray(t, 0.2)
	plan, err := arr.PlanRepair(0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spares != arr.Cols() {
		t.Fatalf("spares = %d, want %d", plan.Spares, arr.Cols())
	}
	if plan.ResidualWorst != 0 {
		t.Fatalf("with every column spare nothing should remain: %+v", plan)
	}
	colMap, err := arr.ColumnMap(0, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(colMap) != 0 {
		t.Fatalf("empty mapping expected, got %v", colMap)
	}
	if _, after, err := arr.RepairEffectiveness(0, plan); err != nil || after != 0 {
		t.Fatalf("effectiveness on empty mapping: after=%d err=%v", after, err)
	}
}

func TestRepairEffectivenessPropagatesMapError(t *testing.T) {
	arr := faultyArray(t, 0.1)
	bad := RepairPlan{Remapped: []int{0, 1, 2, 3}}
	if _, _, err := arr.RepairEffectiveness(arr.Cols(), bad); err == nil {
		t.Fatal("over-retired plan must error through RepairEffectiveness")
	}
}
