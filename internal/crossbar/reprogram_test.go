package crossbar

import (
	"math/rand"
	"testing"

	"einsteinbarrier/internal/device"
)

// Reprogram is the serving-time recalibration primitive: its contract
// is that the post-recalibration planes are a pure function of (seed,
// stored bits) — recalibrating once or a hundred times lands on
// bit-identical analog state — and that drift age resets while stuck-at
// defects survive.

func TestReprogramIdempotentPlanes(t *testing.T) {
	cfg := smallConfig(device.EPCM, false, 4242) // noisy
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	m := randomMatrix(rng, cfg.Rows, cfg.Cols)
	if err := arr.Program(m); err != nil {
		t.Fatal(err)
	}
	set1, reset1 := arr.Reprogram()
	sig := append([]float64(nil), arr.sig...)
	prog := append([]float64(nil), arr.prog...)
	set2, reset2 := arr.Reprogram()
	if set1 != set2 || reset1 != reset2 {
		t.Fatalf("write counts changed across recalibrations: (%d,%d) vs (%d,%d)",
			set1, reset1, set2, reset2)
	}
	want := int64(0)
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if m.Get(r, c) {
				want++
			}
		}
	}
	if set1 != want || reset1 != int64(cfg.Rows*cfg.Cols)-want {
		t.Fatalf("counts (%d,%d) disagree with stored bits (%d set of %d)",
			set1, reset1, want, cfg.Rows*cfg.Cols)
	}
	for i := range sig {
		if arr.sig[i] != sig[i] || arr.prog[i] != prog[i] {
			t.Fatalf("plane slot %d not bit-identical after second Reprogram", i)
		}
	}
}

func TestReprogramResetsDriftAge(t *testing.T) {
	cfg := smallConfig(device.EPCM, false, 991)
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	if err := arr.Program(randomMatrix(rng, cfg.Rows, cfg.Cols)); err != nil {
		t.Fatal(err)
	}
	arr.Reprogram() // canonical recalibrated planes
	sig := append([]float64(nil), arr.sig...)

	arr.Age(1e6)
	drifted := false
	for i := range sig {
		if arr.sig[i] != sig[i] {
			drifted = true
			break
		}
	}
	if !drifted {
		t.Fatal("ageing 1e6 s left every signal untouched — drift model dead?")
	}
	arr.Reprogram()
	for i := range sig {
		if arr.sig[i] != sig[i] {
			t.Fatalf("slot %d: drift survived recalibration", i)
		}
		if arr.age[i] != 0 {
			t.Fatalf("slot %d: age %g not reset", i, arr.age[i])
		}
	}
}

func TestReprogramKeepsFaultsAndCountsWrites(t *testing.T) {
	cfg := smallConfig(device.EPCM, false, 55)
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	if err := arr.Program(randomMatrix(rng, cfg.Rows, cfg.Cols)); err != nil {
		t.Fatal(err)
	}
	if _, err := arr.InjectFaults(FaultModel{StuckOnRate: 0.05, StuckOffRate: 0.05, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	eff := arr.EffectiveBits()
	faults := arr.FaultCount()
	before := arr.Stats().CellWrites
	arr.Reprogram()
	if got := arr.FaultCount(); got != faults {
		t.Fatalf("fault count changed %d → %d across recalibration", faults, got)
	}
	after := arr.EffectiveBits()
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if eff.Get(r, c) != after.Get(r, c) {
				t.Fatalf("effective bit (%d,%d) changed across recalibration", r, c)
			}
		}
	}
	wrote := arr.Stats().CellWrites - before
	if wrote < int64(cfg.Rows*cfg.Cols) {
		t.Fatalf("recalibration wrote %d cells, want ≥ %d", wrote, cfg.Rows*cfg.Cols)
	}
}
