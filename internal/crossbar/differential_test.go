package crossbar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/device"
)

func smallDiffConfig(ideal bool, seed int64) DiffConfig {
	return DiffConfig{
		Rows:  32,
		Cols:  48,
		EPCM:  device.DefaultEPCMParams(),
		Ideal: ideal,
		Seed:  seed,
	}
}

func TestDiffConfigValidate(t *testing.T) {
	if err := DefaultDiffConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DiffConfig{Rows: 0, Cols: 1, EPCM: device.DefaultEPCMParams()}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestReadRowXnorIdeal(t *testing.T) {
	arr, err := NewDiffArray(smallDiffConfig(true, 0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, arr.Rows(), arr.Cols())
	if err := arr.Program(m); err != nil {
		t.Fatal(err)
	}
	x := randomVector(rng, arr.Cols())
	for r := 0; r < arr.Rows(); r++ {
		got, err := arr.ReadRowXnor(r, x)
		if err != nil {
			t.Fatal(err)
		}
		want := x.Xnor(m.Row(r))
		if !got.Equal(want) {
			t.Fatalf("row %d: PCSA read %s, want %s", r, got, want)
		}
	}
}

func TestAllRowsMatchesReference(t *testing.T) {
	// Noisy array with default parameters must still match the software
	// XNOR+Popcount — binary sensing is robust (paper §II-C).
	arr, err := NewDiffArray(smallDiffConfig(false, 21))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, arr.Rows(), arr.Cols())
	if err := arr.Program(m); err != nil {
		t.Fatal(err)
	}
	x := randomVector(rng, arr.Cols())
	got, err := arr.AllRowsXnorPopcount(x)
	if err != nil {
		t.Fatal(err)
	}
	want := m.XnorPopcountAll(x)
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("row %d: got %d, want %d", r, got[r], want[r])
		}
	}
}

func TestDiffStatsSerialization(t *testing.T) {
	// The baseline's cost signature: n rows → n row activations, n·cols
	// PCSA senses, n popcount ops. This is what TacitMap collapses to 1.
	arr, _ := NewDiffArray(smallDiffConfig(true, 0))
	x := bitops.NewVector(arr.Cols())
	if _, err := arr.AllRowsXnorPopcount(x); err != nil {
		t.Fatal(err)
	}
	s := arr.Stats()
	n, c := int64(arr.Rows()), int64(arr.Cols())
	if s.RowActivations != n {
		t.Fatalf("RowActivations = %d, want %d", s.RowActivations, n)
	}
	if s.PCSASenses != n*c {
		t.Fatalf("PCSASenses = %d, want %d", s.PCSASenses, n*c)
	}
	if s.PopcountOps != n {
		t.Fatalf("PopcountOps = %d, want %d", s.PopcountOps, n)
	}
	arr.ResetStats()
	if arr.Stats() != (DiffStats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestDiffProgramCounts2Writes(t *testing.T) {
	arr, _ := NewDiffArray(smallDiffConfig(true, 0))
	arr.ResetStats()
	m := bitops.NewMatrix(arr.Rows(), arr.Cols())
	if err := arr.Program(m); err != nil {
		t.Fatal(err)
	}
	want := int64(2 * arr.Rows() * arr.Cols())
	if got := arr.Stats().CellWrites; got != want {
		t.Fatalf("CellWrites = %d, want %d (2 devices per bit)", got, want)
	}
}

func TestDiffErrors(t *testing.T) {
	arr, _ := NewDiffArray(smallDiffConfig(true, 0))
	if _, err := arr.ReadRowXnor(-1, bitops.NewVector(arr.Cols())); err == nil {
		t.Fatal("expected row range error")
	}
	if _, err := arr.ReadRowXnor(arr.Rows(), bitops.NewVector(arr.Cols())); err == nil {
		t.Fatal("expected row range error")
	}
	if _, err := arr.ReadRowXnor(0, bitops.NewVector(1)); err == nil {
		t.Fatal("expected input length error")
	}
	if err := arr.Program(bitops.NewMatrix(1, 1)); err == nil {
		t.Fatal("expected program dimension error")
	}
}

// Property: both organizations compute identical XNOR+Popcount results
// for the same logical weights/inputs — the mappings differ in cost,
// never in function.
func TestOrganizationsAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 8+rng.Intn(8), 8+rng.Intn(16)

		// CustBinaryMap organization (weights as rows).
		dcfg := DiffConfig{Rows: rows, Cols: cols, EPCM: device.DefaultEPCMParams(), Seed: seed}
		diff, err := NewDiffArray(dcfg)
		if err != nil {
			return false
		}
		weights := randomMatrix(rng, rows, cols)
		if err := diff.Program(weights); err != nil {
			return false
		}
		x := randomVector(rng, cols)
		baseline, err := diff.AllRowsXnorPopcount(x)
		if err != nil {
			return false
		}

		// TacitMap organization (weights as [w;¬w] columns).
		cfg := Config{
			Rows: 2 * cols, Cols: rows,
			Tech: device.EPCM, EPCM: device.DefaultEPCMParams(),
			Seed: seed, ColumnsPerADC: 1, ADCBits: 10,
		}
		arr, err := NewArray(cfg)
		if err != nil {
			return false
		}
		layout := bitops.NewMatrix(2*cols, rows)
		for j := 0; j < rows; j++ {
			col := bitops.Concat(weights.Row(j), weights.Row(j).Not())
			for r := 0; r < 2*cols; r++ {
				layout.Set(r, j, col.Get(r))
			}
		}
		if err := arr.Program(layout); err != nil {
			return false
		}
		tacit, err := arr.VMM(bitops.Concat(x, x.Not()))
		if err != nil {
			return false
		}
		for j := 0; j < rows; j++ {
			if baseline[j] != tacit[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
