package crossbar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/device"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *bitops.Matrix {
	m := bitops.NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, rng.Intn(2) == 1)
		}
	}
	return m
}

func randomVector(rng *rand.Rand, n int) *bitops.Vector {
	v := bitops.NewVector(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func smallConfig(tech device.Technology, ideal bool, seed int64) Config {
	cfg := DefaultConfig(tech)
	cfg.Rows, cfg.Cols = 64, 32
	cfg.ADCBits = 7
	cfg.Ideal = ideal
	cfg.Seed = seed
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(device.EPCM).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Rows: 0, Cols: 4, ColumnsPerADC: 1, ADCBits: 8},
		{Rows: 4, Cols: 0, ColumnsPerADC: 1, ADCBits: 8},
		{Rows: 4, Cols: 4, ColumnsPerADC: 0, ADCBits: 8},
		{Rows: 4, Cols: 4, ColumnsPerADC: 1, ADCBits: 0},
		{Rows: 1024, Cols: 4, ColumnsPerADC: 1, ADCBits: 8}, // ADC too narrow
	}
	for i, cfg := range bad {
		cfg.Tech = device.EPCM
		cfg.EPCM = device.DefaultEPCMParams()
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestIdealVMMMatchesAndPopcount(t *testing.T) {
	for _, tech := range []device.Technology{device.EPCM, device.OPCM} {
		arr, err := NewArray(smallConfig(tech, true, 0))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		m := randomMatrix(rng, arr.Rows(), arr.Cols())
		if err := arr.Program(m); err != nil {
			t.Fatal(err)
		}
		x := randomVector(rng, arr.Rows())
		got, err := arr.VMM(x)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < arr.Cols(); c++ {
			want := bitops.AndPopcount(x, m.Col(c))
			if got[c] != want {
				t.Fatalf("%v col %d: got %d, want %d", tech, c, got[c], want)
			}
		}
	}
}

// TestTacitMapColumnOnArray programs [w ; ¬w] into a column, drives
// [x ; ¬x], and checks the ADC reads Popcount(XNOR(x,w)) — the analog
// realization of the identity proven in bitops.
func TestTacitMapColumnOnArray(t *testing.T) {
	cfg := smallConfig(device.EPCM, false, 77) // noisy, default params
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	m := cfg.Rows / 2
	layout := bitops.NewMatrix(cfg.Rows, cfg.Cols)
	weights := make([]*bitops.Vector, cfg.Cols)
	for c := 0; c < cfg.Cols; c++ {
		w := randomVector(rng, m)
		weights[c] = w
		col := bitops.Concat(w, w.Not())
		for r := 0; r < cfg.Rows; r++ {
			layout.Set(r, c, col.Get(r))
		}
	}
	if err := arr.Program(layout); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		x := randomVector(rng, m)
		counts, err := arr.VMM(bitops.Concat(x, x.Not()))
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < cfg.Cols; c++ {
			want := bitops.XnorPopcount(x, weights[c])
			if counts[c] != want {
				t.Fatalf("trial %d col %d: got %d, want %d (noise broke decode)",
					trial, c, counts[c], want)
			}
		}
	}
}

func TestVMMInputLengthMismatch(t *testing.T) {
	arr, _ := NewArray(smallConfig(device.EPCM, true, 0))
	if _, err := arr.VMM(bitops.NewVector(3)); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestProgramDimensionMismatch(t *testing.T) {
	arr, _ := NewArray(smallConfig(device.EPCM, true, 0))
	if err := arr.Program(bitops.NewMatrix(1, 1)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestVMMStatsAccounting(t *testing.T) {
	arr, _ := NewArray(smallConfig(device.EPCM, true, 0))
	x := bitops.NewVector(arr.Rows())
	x.Set(0)
	x.Set(5)
	x.Set(10)
	if _, err := arr.VMM(x); err != nil {
		t.Fatal(err)
	}
	s := arr.Stats()
	if s.VMMOps != 1 || s.RowActivations != 3 || s.DACConversions != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ADCConversions != int64(arr.Cols()) {
		t.Fatalf("ADC conversions = %d, want %d", s.ADCConversions, arr.Cols())
	}
	arr.ResetStats()
	if arr.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestMMMRequiresOPCM(t *testing.T) {
	arr, _ := NewArray(smallConfig(device.EPCM, true, 0))
	if _, err := arr.MMM([]*bitops.Vector{bitops.NewVector(arr.Rows())}); err == nil {
		t.Fatal("expected error: MMM on ePCM")
	}
}

func TestMMMEmptyAndMismatchedInputs(t *testing.T) {
	arr, _ := NewArray(smallConfig(device.OPCM, true, 0))
	if _, err := arr.MMM(nil); err == nil {
		t.Fatal("expected error for empty inputs")
	}
	if _, err := arr.MMM([]*bitops.Vector{bitops.NewVector(1)}); err == nil {
		t.Fatal("expected error for wrong length")
	}
}

func TestMMMMatchesPerVectorVMM(t *testing.T) {
	// With realistic (default) noise and crosstalk the K-wavelength MMM
	// must decode the same counts as K independent VMMs.
	cfg := smallConfig(device.OPCM, false, 5)
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	m := randomMatrix(rng, cfg.Rows, cfg.Cols)
	if err := arr.Program(m); err != nil {
		t.Fatal(err)
	}
	const k = 8
	inputs := make([]*bitops.Vector, k)
	for i := range inputs {
		inputs[i] = randomVector(rng, cfg.Rows)
	}
	got, err := arr.MMM(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		for c := 0; c < cfg.Cols; c++ {
			want := bitops.AndPopcount(in, m.Col(c))
			if got[i][c] != want {
				t.Fatalf("λ%d col %d: got %d, want %d", i, c, got[i][c], want)
			}
		}
	}
	s := arr.Stats()
	if s.VMMOps != 1 {
		t.Fatalf("MMM must count as one crossbar activation, got %d", s.VMMOps)
	}
	if s.WavelengthOps != int64(k*cfg.Cols) {
		t.Fatalf("WavelengthOps = %d", s.WavelengthOps)
	}
}

func TestMMMHeavyCrosstalkCorruptsDecode(t *testing.T) {
	// Sanity: the crosstalk model must actually do something — at an
	// absurd -3 dB floor with 16 wavelengths, decodes should break.
	cfg := smallConfig(device.OPCM, false, 5)
	cfg.OPCM.CrossTalkDB = -3
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	m := randomMatrix(rng, cfg.Rows, cfg.Cols)
	_ = arr.Program(m)
	inputs := make([]*bitops.Vector, 16)
	for i := range inputs {
		inputs[i] = randomVector(rng, cfg.Rows)
	}
	got, err := arr.MMM(inputs)
	if err != nil {
		t.Fatal(err)
	}
	errors := 0
	for i, in := range inputs {
		for c := 0; c < cfg.Cols; c++ {
			if got[i][c] != bitops.AndPopcount(in, m.Col(c)) {
				errors++
			}
		}
	}
	if errors == 0 {
		t.Fatal("expected decode errors under -3 dB crosstalk")
	}
}

func TestDriftedArrayStillDecodes(t *testing.T) {
	// One hour of drift must not break binary decoding (the read window
	// is 100×; drift shrinks G_off further, which only helps).
	cfg := smallConfig(device.EPCM, false, 11)
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	m := randomMatrix(rng, cfg.Rows, cfg.Cols)
	_ = arr.Program(m)
	arr.Age(3600)
	x := randomVector(rng, cfg.Rows)
	got, err := arr.VMM(x)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < cfg.Cols; c++ {
		if got[c] != bitops.AndPopcount(x, m.Col(c)) {
			t.Fatalf("drifted decode wrong at col %d", c)
		}
	}
}

// Property: for arbitrary seeds and small random layouts, the noisy
// ePCM array decodes exactly (default parameters are within the binary
// robustness regime — the paper's §II-C premise).
func TestNoisyDecodeExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := smallConfig(device.EPCM, false, seed)
		arr, err := NewArray(cfg)
		if err != nil {
			return false
		}
		m := randomMatrix(rng, cfg.Rows, cfg.Cols)
		if err := arr.Program(m); err != nil {
			return false
		}
		x := randomVector(rng, cfg.Rows)
		got, err := arr.VMM(x)
		if err != nil {
			return false
		}
		for c := 0; c < cfg.Cols; c++ {
			if got[c] != bitops.AndPopcount(x, m.Col(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestADCStepsPerVMM(t *testing.T) {
	cfg := smallConfig(device.EPCM, true, 0)
	cfg.ColumnsPerADC = 8
	arr, _ := NewArray(cfg)
	if arr.ADCStepsPerVMM() != 8 {
		t.Fatalf("ADCStepsPerVMM = %d", arr.ADCStepsPerVMM())
	}
}

func TestProgrammedRoundTrip(t *testing.T) {
	arr, _ := NewArray(smallConfig(device.EPCM, true, 0))
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, arr.Rows(), arr.Cols())
	_ = arr.Program(m)
	got := arr.Programmed()
	for r := 0; r < m.Rows(); r++ {
		if !got.Row(r).Equal(m.Row(r)) {
			t.Fatal("Programmed round trip failed")
		}
	}
}
