package crossbar

import (
	"math/rand"
	"testing"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/device"
)

// The flat planes must reproduce the per-cell-object device model
// exactly: programming a seeded array draws the same RNG stream, in the
// same row-major order, as constructing one device.EPCMCell/OPCMCell
// after another.

func TestEPCMPlaneMatchesCellStream(t *testing.T) {
	cfg := smallConfig(device.EPCM, false, 1234) // noisy
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	m := randomMatrix(rng, cfg.Rows, cfg.Cols)
	if err := arr.Program(m); err != nil {
		t.Fatal(err)
	}
	// Replay: NewArray programs the all-zero matrix first, then Program
	// draws for every cell of m — all from the same seeded stream.
	ref := rand.New(rand.NewSource(cfg.Seed))
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			device.NewEPCMCell(cfg.EPCM, false, ref) // NewArray's defined-state pass
		}
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			cell := device.NewEPCMCell(cfg.EPCM, m.Get(r, c), ref)
			idx := r*cfg.Cols + c
			if got, want := arr.prog[idx], cell.Conductance(nil); got != want {
				t.Fatalf("cell (%d,%d): plane conductance %g, cell %g", r, c, got, want)
			}
			if got, want := arr.sig[idx], cell.ReadCurrent(nil); got != want {
				t.Fatalf("cell (%d,%d): plane signal %g, cell current %g", r, c, got, want)
			}
		}
	}
}

func TestOPCMPlaneMatchesCellStream(t *testing.T) {
	cfg := smallConfig(device.OPCM, false, 777)
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	m := randomMatrix(rng, cfg.Rows, cfg.Cols)
	if err := arr.Program(m); err != nil {
		t.Fatal(err)
	}
	ref := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Rows*cfg.Cols; i++ {
		device.NewOPCMCell(cfg.OPCM, false, ref)
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			cell := device.NewOPCMCell(cfg.OPCM, m.Get(r, c), ref)
			if got, want := arr.prog[r*cfg.Cols+c], cell.Transmittance(nil); got != want {
				t.Fatalf("cell (%d,%d): plane transmittance %g, cell %g", r, c, got, want)
			}
		}
	}
}

func TestAgedPlaneMatchesDriftedCells(t *testing.T) {
	// After Age, the signal plane must hold exactly what per-cell drift
	// evaluation would return (drift folded in once, not per read).
	cfg := smallConfig(device.EPCM, true, 0)
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, cfg.Rows, cfg.Cols)
	if err := arr.Program(m); err != nil {
		t.Fatal(err)
	}
	arr.Age(1800)
	arr.Age(1800) // accumulates like per-cell Age calls
	p := cfg.EPCM
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			cell := device.NewEPCMCell(p, m.Get(r, c), nil)
			cell.Age(1800)
			cell.Age(1800)
			if got, want := arr.sig[r*cfg.Cols+c], cell.ReadCurrent(nil); got != want {
				t.Fatalf("aged cell (%d,%d): plane %g, cell %g", r, c, got, want)
			}
		}
	}
}

func TestNegativeAgePanics(t *testing.T) {
	arr, _ := NewArray(smallConfig(device.EPCM, true, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	arr.Age(-1)
}

// Zero-allocation regression pins for the analog hot paths (ISSUE 2
// acceptance: VMMInto / MMMInto must be allocation-free in steady
// state, including under noise).
func TestVMMIntoZeroAllocs(t *testing.T) {
	for _, tech := range []device.Technology{device.EPCM, device.OPCM} {
		arr, err := NewArray(smallConfig(tech, false, 3)) // noisy
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		if err := arr.Program(randomMatrix(rng, arr.Rows(), arr.Cols())); err != nil {
			t.Fatal(err)
		}
		x := randomVector(rng, arr.Rows())
		dst := make([]int, arr.Cols())
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := arr.VMMInto(x, dst); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%v VMMInto allocates %g times per run", tech, allocs)
		}
	}
}

func TestMMMIntoZeroAllocs(t *testing.T) {
	arr, err := NewArray(smallConfig(device.OPCM, false, 6))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	if err := arr.Program(randomMatrix(rng, arr.Rows(), arr.Cols())); err != nil {
		t.Fatal(err)
	}
	const k = 4
	inputs := make([]*bitops.Vector, k)
	dst := make([][]int, k)
	for i := range inputs {
		inputs[i] = randomVector(rng, arr.Rows())
		dst[i] = make([]int, arr.Cols())
	}
	// Warm the K-sized scratch once, then pin.
	if _, err := arr.MMMInto(inputs, dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := arr.MMMInto(inputs, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("MMMInto allocates %g times per run", allocs)
	}
}

func TestRowXnorPopcountZeroAllocs(t *testing.T) {
	arr, err := NewDiffArray(DiffConfig{Rows: 64, Cols: 96, EPCM: device.DefaultEPCMParams(), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	if err := arr.Program(randomMatrix(rng, 64, 96)); err != nil {
		t.Fatal(err)
	}
	x := randomVector(rng, 96)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := arr.RowXnorPopcount(5, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("RowXnorPopcount allocates %g times per run", allocs)
	}
}

// Deterministic fault reapplication: reprogramming a faulty array twice
// from the same state must leave identical planes — the old map-ordered
// reapplication drew the stuck cells' variability in nondeterministic
// order.
func TestFaultReapplicationDeterministic(t *testing.T) {
	mk := func() *Array {
		cfg := smallConfig(device.EPCM, false, 11)
		arr, err := NewArray(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(12))
		if err := arr.Program(randomMatrix(rng, cfg.Rows, cfg.Cols)); err != nil {
			t.Fatal(err)
		}
		if _, err := arr.InjectFaults(FaultModel{StuckOnRate: 0.02, StuckOffRate: 0.02, Seed: 13}); err != nil {
			t.Fatal(err)
		}
		rng2 := rand.New(rand.NewSource(12))
		if err := arr.Program(randomMatrix(rng2, cfg.Rows, cfg.Cols)); err != nil {
			t.Fatal(err)
		}
		return arr
	}
	a, b := mk(), mk()
	for i := range a.prog {
		if a.prog[i] != b.prog[i] || a.sig[i] != b.sig[i] {
			t.Fatalf("plane %d differs across identical runs", i)
		}
	}
}
