package crossbar

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"einsteinbarrier/internal/device"
)

// FuzzInjectFaults drives fault injection with arbitrary rates and
// seeds and checks the structural invariants the lifetime loop relies
// on:
//
//   - the reported flipped count is exactly |mask ∧ (programmed ⊕
//     stuckState)| and FaultCount is the mask popcount;
//   - re-applying the stored mask is idempotent: the effective bits
//     never move, and on an ideal (noise-free) array the analog planes
//     are bit-identical too (with noise on, applyFaults legitimately
//     re-draws the stuck cells' programming variability);
//   - Reprogram (the recalibration write pass) preserves the defect
//     population bit for bit and re-injecting the same model returns
//     the same flipped count.
//
// The seed corpus pins the TestFaultsSurviveReprogramming cases.
func FuzzInjectFaults(f *testing.F) {
	f.Add(0.1, 0.0, int64(2), int64(6))
	f.Add(0.03, 0.03, int64(4), int64(4))
	f.Add(0.0, 0.0, int64(0), int64(0))
	f.Add(0.5, 0.5, int64(9), int64(1))

	f.Fuzz(func(t *testing.T, onRate, offRate float64, faultSeed, progSeed int64) {
		for _, ideal := range []bool{true, false} {
			fuzzInjectFaults(t, onRate, offRate, faultSeed, progSeed, ideal)
		}
	})
}

func fuzzInjectFaults(t *testing.T, onRate, offRate float64, faultSeed, progSeed int64, ideal bool) {
	cfg := smallConfig(device.EPCM, ideal, progSeed)
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(progSeed))
	if err := arr.Program(randomMatrix(rng, cfg.Rows, cfg.Cols)); err != nil {
		t.Fatal(err)
	}

	fm := FaultModel{StuckOnRate: onRate, StuckOffRate: offRate, Seed: faultSeed}
	flipped, err := arr.InjectFaults(fm)
	if fm.Validate() != nil || math.IsNaN(onRate) || math.IsNaN(offRate) {
		if err == nil {
			t.Fatalf("invalid model %+v accepted", fm)
		}
		return
	}
	if err != nil {
		t.Fatalf("valid model %+v rejected: %v", fm, err)
	}

	// Counting invariants, recomputed independently word-wise.
	wantFlipped, wantFaults := 0, 0
	pw, mw, sw := arr.programmed.Words(), arr.stuckMask.Words(), arr.stuckState.Words()
	for i, m := range mw {
		wantFlipped += bits.OnesCount64(m & (pw[i] ^ sw[i]))
		wantFaults += bits.OnesCount64(m)
	}
	if flipped != wantFlipped {
		t.Fatalf("flipped = %d, mask says %d", flipped, wantFlipped)
	}
	if arr.FaultCount() != wantFaults {
		t.Fatalf("FaultCount = %d, mask popcount %d", arr.FaultCount(), wantFaults)
	}

	snapshot := func() ([]float64, []float64, []uint64) {
		return append([]float64(nil), arr.sig...),
			append([]float64(nil), arr.prog...),
			append([]uint64(nil), arr.effective.Words()...)
	}
	eq := func(what string, a, b []float64) {
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("ideal=%v: %s plane diverged at %d: %g != %g", ideal, what, i, a[i], b[i])
			}
		}
	}

	// Re-applying the stored mask must not change the logical content;
	// on an ideal array the analog planes are exact too.
	sig0, prog0, eff0 := snapshot()
	arr.applyFaults()
	sig1, prog1, eff1 := snapshot()
	for i := range eff0 {
		if eff0[i] != eff1[i] {
			t.Fatalf("ideal=%v: effective bits diverged at word %d", ideal, i)
		}
	}
	if ideal {
		eq("sig", sig0, sig1)
		eq("prog", prog0, prog1)
	}

	// The recalibration write pass keeps the defect population.
	arr.Reprogram()
	_, _, eff2 := snapshot()
	for i := range eff0 {
		if eff0[i] != eff2[i] {
			t.Fatalf("ideal=%v: Reprogram changed effective bits at word %d", ideal, i)
		}
	}
	if arr.FaultCount() != wantFaults {
		t.Fatalf("Reprogram changed FaultCount: %d != %d", arr.FaultCount(), wantFaults)
	}
	again, err := arr.InjectFaults(fm)
	if err != nil || again != flipped {
		t.Fatalf("re-injection not reproducible: %d/%v vs %d", again, err, flipped)
	}
}
