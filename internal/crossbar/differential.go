package crossbar

import (
	"fmt"
	"math/rand"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/device"
)

// DiffConfig describes a 2T2R differential crossbar with pre-charge
// sense amplifiers (PCSA), the organization used by the CustBinaryMap
// baseline (Hirtzlin et al., Frontiers in Neuroscience 2020).
//
// Each logical cell is a device pair (d, d̄) storing a bit and its
// complement. One word line is activated per step; the interleaved
// input (x, x̄) gates the bit-line pair, and each PCSA resolves one
// XNOR(x_j, w_j) bit by differential sensing. A digital 5-bit counter
// per column plus a popcount tree then accumulate the row popcount —
// the "additional digital circuitry" TacitMap eliminates (paper §III).
type DiffConfig struct {
	// Rows is the number of word lines (logical weight vectors).
	Rows int
	// Cols is the number of logical columns (bits per weight vector);
	// the physical array is Rows × 2·Cols devices.
	Cols int
	// EPCM holds the device parameters (the baseline is electrical).
	EPCM device.EPCMParams
	// Seed / Ideal as in Config.
	Seed  int64
	Ideal bool
}

// DefaultDiffConfig mirrors DefaultConfig's geometry for the baseline.
func DefaultDiffConfig() DiffConfig {
	return DiffConfig{Rows: 256, Cols: 128, EPCM: device.DefaultEPCMParams()}
}

// Validate checks the configuration.
func (c DiffConfig) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("crossbar: non-positive diff dims %dx%d", c.Rows, c.Cols)
	}
	return c.EPCM.Validate()
}

// DiffStats counts events specific to the differential organization.
type DiffStats struct {
	CellWrites     int64 // physical device writes (2 per logical bit)
	RowActivations int64 // sequential word-line steps
	PCSASenses     int64 // sense-amplifier resolutions
	PopcountOps    int64 // digital popcount tree operations
}

// Add accumulates other into s.
func (s *DiffStats) Add(o DiffStats) {
	s.CellWrites += o.CellWrites
	s.RowActivations += o.RowActivations
	s.PCSASenses += o.PCSASenses
	s.PopcountOps += o.PopcountOps
}

// DiffArray is a programmed 2T2R array.
type DiffArray struct {
	cfg   DiffConfig
	rng   *rand.Rand
	pos   [][]*device.EPCMCell // stores w
	neg   [][]*device.EPCMCell // stores ¬w
	bits  *bitops.Matrix
	stats DiffStats
}

// NewDiffArray allocates an all-zero 2T2R array.
func NewDiffArray(cfg DiffConfig) (*DiffArray, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &DiffArray{cfg: cfg}
	if !cfg.Ideal {
		a.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	a.pos = make([][]*device.EPCMCell, cfg.Rows)
	a.neg = make([][]*device.EPCMCell, cfg.Rows)
	for r := range a.pos {
		a.pos[r] = make([]*device.EPCMCell, cfg.Cols)
		a.neg[r] = make([]*device.EPCMCell, cfg.Cols)
	}
	a.bits = bitops.NewMatrix(cfg.Rows, cfg.Cols)
	a.programAll(a.bits)
	a.stats = DiffStats{}
	return a, nil
}

// Config returns the array configuration.
func (a *DiffArray) Config() DiffConfig { return a.cfg }

// Stats returns a copy of the event counters.
func (a *DiffArray) Stats() DiffStats { return a.stats }

// ResetStats zeroes the counters.
func (a *DiffArray) ResetStats() { a.stats = DiffStats{} }

// Rows and Cols report logical dimensions.
func (a *DiffArray) Rows() int { return a.cfg.Rows }
func (a *DiffArray) Cols() int { return a.cfg.Cols }

// Program stores the logical bit matrix; each bit programs the (w, ¬w)
// device pair.
func (a *DiffArray) Program(m *bitops.Matrix) error {
	if m.Rows() != a.cfg.Rows || m.Cols() != a.cfg.Cols {
		return fmt.Errorf("crossbar: program %dx%d into diff %dx%d",
			m.Rows(), m.Cols(), a.cfg.Rows, a.cfg.Cols)
	}
	a.programAll(m)
	a.bits = m.Clone()
	return nil
}

func (a *DiffArray) programAll(m *bitops.Matrix) {
	for r := 0; r < a.cfg.Rows; r++ {
		for c := 0; c < a.cfg.Cols; c++ {
			bit := m.Get(r, c)
			a.pos[r][c] = device.NewEPCMCell(a.cfg.EPCM, bit, a.rng)
			a.neg[r][c] = device.NewEPCMCell(a.cfg.EPCM, !bit, a.rng)
			a.stats.CellWrites += 2
		}
	}
}

// ReadRowXnor activates word line row with the interleaved input pair
// (x on the direct bit lines, ¬x on the complement bit lines) and
// resolves the per-column PCSA outputs: out[j] = XNOR(x_j, w_{row,j}).
//
// Physically: the cell pair contributes current x_j·g(w_j) + x̄_j·g(¬w_j);
// that sum is ≈ g_on when x_j == w_j and ≈ g_off otherwise, so the PCSA
// thresholds at the midpoint. Device noise can flip marginal senses,
// which the tests quantify.
func (a *DiffArray) ReadRowXnor(row int, x *bitops.Vector) (*bitops.Vector, error) {
	if row < 0 || row >= a.cfg.Rows {
		return nil, fmt.Errorf("crossbar: row %d out of range [0,%d)", row, a.cfg.Rows)
	}
	if x.Len() != a.cfg.Cols {
		return nil, fmt.Errorf("crossbar: input length %d != cols %d", x.Len(), a.cfg.Cols)
	}
	p := a.cfg.EPCM
	threshold := (p.GOn + p.GOff) / 2 * p.ReadVoltage
	out := bitops.NewVector(a.cfg.Cols)
	for c := 0; c < a.cfg.Cols; c++ {
		var i float64
		if x.Get(c) {
			i += a.pos[row][c].ReadCurrent(a.rng)
		} else {
			i += a.neg[row][c].ReadCurrent(a.rng)
		}
		if i > threshold {
			out.Set(c)
		}
		a.stats.PCSASenses++
	}
	a.stats.RowActivations++
	return out, nil
}

// RowXnorPopcount performs one full CustBinaryMap step: activate a row,
// sense all PCSAs, then run the digital popcount tree over the sensed
// bits. This is the 2-step (sense + count) operation the paper contrasts
// with TacitMap's single analog step.
func (a *DiffArray) RowXnorPopcount(row int, x *bitops.Vector) (int, error) {
	bitsOut, err := a.ReadRowXnor(row, x)
	if err != nil {
		return 0, err
	}
	a.stats.PopcountOps++
	return bitsOut.Popcount(), nil
}

// AllRowsXnorPopcount processes every stored weight vector sequentially
// — n steps for n rows, the baseline's fundamental serialization.
func (a *DiffArray) AllRowsXnorPopcount(x *bitops.Vector) ([]int, error) {
	out := make([]int, a.cfg.Rows)
	for r := 0; r < a.cfg.Rows; r++ {
		pc, err := a.RowXnorPopcount(r, x)
		if err != nil {
			return nil, err
		}
		out[r] = pc
	}
	return out, nil
}
