package crossbar

import (
	"fmt"
	"math/rand"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/device"
)

// DiffConfig describes a 2T2R differential crossbar with pre-charge
// sense amplifiers (PCSA), the organization used by the CustBinaryMap
// baseline (Hirtzlin et al., Frontiers in Neuroscience 2020).
//
// Each logical cell is a device pair (d, d̄) storing a bit and its
// complement. One word line is activated per step; the interleaved
// input (x, x̄) gates the bit-line pair, and each PCSA resolves one
// XNOR(x_j, w_j) bit by differential sensing. A digital 5-bit counter
// per column plus a popcount tree then accumulate the row popcount —
// the "additional digital circuitry" TacitMap eliminates (paper §III).
type DiffConfig struct {
	// Rows is the number of word lines (logical weight vectors).
	Rows int
	// Cols is the number of logical columns (bits per weight vector);
	// the physical array is Rows × 2·Cols devices.
	Cols int
	// EPCM holds the device parameters (the baseline is electrical).
	EPCM device.EPCMParams
	// Seed / Ideal as in Config.
	Seed  int64
	Ideal bool
}

// DefaultDiffConfig mirrors DefaultConfig's geometry for the baseline.
func DefaultDiffConfig() DiffConfig {
	return DiffConfig{Rows: 256, Cols: 128, EPCM: device.DefaultEPCMParams()}
}

// Validate checks the configuration.
func (c DiffConfig) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("crossbar: non-positive diff dims %dx%d", c.Rows, c.Cols)
	}
	return c.EPCM.Validate()
}

// DiffStats counts events specific to the differential organization.
type DiffStats struct {
	CellWrites     int64 // physical device writes (2 per logical bit)
	RowActivations int64 // sequential word-line steps
	PCSASenses     int64 // sense-amplifier resolutions
	PopcountOps    int64 // digital popcount tree operations
}

// Add accumulates other into s.
func (s *DiffStats) Add(o DiffStats) {
	s.CellWrites += o.CellWrites
	s.RowActivations += o.RowActivations
	s.PCSASenses += o.PCSASenses
	s.PopcountOps += o.PopcountOps
}

// DiffArray is a programmed 2T2R array. Like Array it stores no
// per-cell objects: the device pair of logical cell (r, c) lives at
// index r*cols+c of two flat conductance planes (posG holds the w
// device, negG the ¬w device). Not safe for concurrent use.
type DiffArray struct {
	cfg        DiffConfig
	rng        *rand.Rand
	rows, cols int
	posG       []float64 // as-programmed conductance of the w devices
	negG       []float64 // as-programmed conductance of the ¬w devices
	bits       *bitops.Matrix
	stats      DiffStats
	sense      *bitops.Vector // scratch for RowXnorPopcount
}

// NewDiffArray allocates an all-zero 2T2R array.
func NewDiffArray(cfg DiffConfig) (*DiffArray, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &DiffArray{cfg: cfg, rows: cfg.Rows, cols: cfg.Cols}
	if !cfg.Ideal {
		a.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	n := cfg.Rows * cfg.Cols
	a.posG = make([]float64, n)
	a.negG = make([]float64, n)
	a.bits = bitops.NewMatrix(cfg.Rows, cfg.Cols)
	a.sense = bitops.NewVector(cfg.Cols)
	a.programAll(a.bits)
	a.stats = DiffStats{}
	return a, nil
}

// Config returns the array configuration.
func (a *DiffArray) Config() DiffConfig { return a.cfg }

// Stats returns a copy of the event counters.
func (a *DiffArray) Stats() DiffStats { return a.stats }

// ResetStats zeroes the counters.
func (a *DiffArray) ResetStats() { a.stats = DiffStats{} }

// Rows and Cols report logical dimensions.
func (a *DiffArray) Rows() int { return a.cfg.Rows }
func (a *DiffArray) Cols() int { return a.cfg.Cols }

// Program stores the logical bit matrix; each bit programs the (w, ¬w)
// device pair.
func (a *DiffArray) Program(m *bitops.Matrix) error {
	if m.Rows() != a.cfg.Rows || m.Cols() != a.cfg.Cols {
		return fmt.Errorf("crossbar: program %dx%d into diff %dx%d",
			m.Rows(), m.Cols(), a.cfg.Rows, a.cfg.Cols)
	}
	a.programAll(m)
	a.bits.CopyFrom(m)
	return nil
}

// programAll programs every device pair row-major, drawing the w then
// the ¬w variability per cell — the same RNG order as programming one
// device object after another.
func (a *DiffArray) programAll(m *bitops.Matrix) {
	p := a.cfg.EPCM
	idx := 0
	for r := 0; r < a.rows; r++ {
		row := m.RowWords(r)
		for c := 0; c < a.cols; c++ {
			bit := row[c>>6]>>(uint(c)&63)&1 == 1
			a.posG[idx] = p.ProgramConductance(bit, a.rng)
			a.negG[idx] = p.ProgramConductance(!bit, a.rng)
			idx++
		}
	}
	a.stats.CellWrites += 2 * int64(a.rows*a.cols)
}

// ReadRowXnor activates word line row with the interleaved input pair
// (x on the direct bit lines, ¬x on the complement bit lines) and
// resolves the per-column PCSA outputs: out[j] = XNOR(x_j, w_{row,j}).
//
// Physically: the cell pair contributes current x_j·g(w_j) + x̄_j·g(¬w_j);
// that sum is ≈ g_on when x_j == w_j and ≈ g_off otherwise, so the PCSA
// thresholds at the midpoint. Device noise can flip marginal senses,
// which the tests quantify.
func (a *DiffArray) ReadRowXnor(row int, x *bitops.Vector) (*bitops.Vector, error) {
	return a.ReadRowXnorInto(row, x, nil)
}

// ReadRowXnorInto is the allocation-free form of ReadRowXnor: the PCSA
// outputs are written into out (length Cols; nil allocates).
func (a *DiffArray) ReadRowXnorInto(row int, x, out *bitops.Vector) (*bitops.Vector, error) {
	if row < 0 || row >= a.cfg.Rows {
		return nil, fmt.Errorf("crossbar: row %d out of range [0,%d)", row, a.cfg.Rows)
	}
	if x.Len() != a.cfg.Cols {
		return nil, fmt.Errorf("crossbar: input length %d != cols %d", x.Len(), a.cfg.Cols)
	}
	if out == nil {
		out = bitops.NewVector(a.cfg.Cols)
	} else if out.Len() != a.cfg.Cols {
		return nil, fmt.Errorf("crossbar: ReadRowXnorInto dst length %d != cols %d", out.Len(), a.cfg.Cols)
	}
	p := a.cfg.EPCM
	threshold := (p.GOn + p.GOff) / 2 * p.ReadVoltage
	sigma := 0.0
	if a.rng != nil {
		sigma = p.ReadNoiseSigma
	}
	base := row * a.cols
	xw := x.Words()
	ow := out.Words()
	var acc uint64
	for c := 0; c < a.cols; c++ {
		g := a.negG[base+c]
		if xw[c>>6]>>(uint(c)&63)&1 == 1 {
			g = a.posG[base+c]
		}
		if sigma > 0 {
			g *= 1 + a.rng.NormFloat64()*sigma
			if g < 0 {
				g = 0
			}
		}
		if g*p.ReadVoltage > threshold {
			acc |= 1 << (uint(c) & 63)
		}
		if c&63 == 63 {
			ow[c>>6] = acc
			acc = 0
		}
	}
	if a.cols&63 != 0 {
		ow[a.cols>>6] = acc
	}
	a.stats.PCSASenses += int64(a.cols)
	a.stats.RowActivations++
	return out, nil
}

// RowXnorPopcount performs one full CustBinaryMap step: activate a row,
// sense all PCSAs, then run the digital popcount tree over the sensed
// bits. This is the 2-step (sense + count) operation the paper contrasts
// with TacitMap's single analog step. Uses array-owned sense scratch,
// so it performs no steady-state allocations.
func (a *DiffArray) RowXnorPopcount(row int, x *bitops.Vector) (int, error) {
	bitsOut, err := a.ReadRowXnorInto(row, x, a.sense)
	if err != nil {
		return 0, err
	}
	a.stats.PopcountOps++
	return bitsOut.Popcount(), nil
}

// AllRowsXnorPopcount processes every stored weight vector sequentially
// — n steps for n rows, the baseline's fundamental serialization.
func (a *DiffArray) AllRowsXnorPopcount(x *bitops.Vector) ([]int, error) {
	out := make([]int, a.cfg.Rows)
	for r := 0; r < a.cfg.Rows; r++ {
		pc, err := a.RowXnorPopcount(r, x)
		if err != nil {
			return nil, err
		}
		out[r] = pc
	}
	return out, nil
}
