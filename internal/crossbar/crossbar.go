// Package crossbar simulates analog in-memory compute arrays.
//
// Two array organizations from the paper are modeled:
//
//   - Array: a conventional 1T1R crossbar (one PCM device per cell) with
//     DACs on the rows and ADCs on the columns. Driving a set of rows
//     accumulates per-column cell currents (Kirchhoff) which the ADC
//     decodes back to an integer count. This is the substrate TacitMap
//     targets: all columns are evaluated in a single VMM step.
//
//   - DiffArray (differential.go): a 2T2R crossbar with a pre-charge
//     sense amplifier (PCSA) per column pair, as used by the
//     CustBinaryMap baseline (Hirtzlin et al.): one row is activated per
//     step and each PCSA emits one XNOR bit, followed by digital
//     popcount circuitry.
//
// Both organizations support ePCM (current-domain) and oPCM
// (photocurrent-domain) cells from internal/device. All analog effects
// — programming variability, read noise, drift, WDM crosstalk — are
// injected at the device level, so decoding errors propagate to the
// returned counts exactly as they would in hardware.
package crossbar

import (
	"fmt"
	"math"
	"math/rand"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/device"
)

// Config describes a 1T1R crossbar array.
type Config struct {
	// Rows and Cols are the physical array dimensions.
	Rows, Cols int
	// Tech selects the cell technology.
	Tech device.Technology
	// EPCM / OPCM hold the device parameters for the chosen technology.
	EPCM device.EPCMParams
	OPCM device.OPCMParams
	// Seed seeds the array's private RNG. Ignored if Ideal.
	Seed int64
	// Ideal disables all variability and noise (ground-truth mode).
	Ideal bool
	// ColumnsPerADC is the ADC sharing factor: one ADC serves this many
	// columns via an analog mux, serializing conversions. 1 = one ADC
	// per column (the paper's footnote-1 idealization); the evaluation
	// default is 8. Must divide nothing — ceil division is used.
	ColumnsPerADC int
	// ADCBits bounds the decodable count range to 2^ADCBits−1.
	ADCBits int
}

// DefaultConfig returns the evaluation-default 256×256 array.
func DefaultConfig(tech device.Technology) Config {
	return Config{
		Rows:          256,
		Cols:          256,
		Tech:          tech,
		EPCM:          device.DefaultEPCMParams(),
		OPCM:          device.DefaultOPCMParams(),
		ColumnsPerADC: 8,
		ADCBits:       9, // counts up to 511 ≥ 256 active rows
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Rows <= 0 || c.Cols <= 0:
		return fmt.Errorf("crossbar: non-positive dims %dx%d", c.Rows, c.Cols)
	case c.ColumnsPerADC <= 0:
		return fmt.Errorf("crossbar: ColumnsPerADC must be ≥ 1, got %d", c.ColumnsPerADC)
	case c.ADCBits <= 0 || c.ADCBits > 16:
		return fmt.Errorf("crossbar: ADCBits %d outside [1,16]", c.ADCBits)
	}
	if (1<<uint(c.ADCBits))-1 < c.Rows {
		return fmt.Errorf("crossbar: %d-bit ADC cannot encode counts up to %d rows", c.ADCBits, c.Rows)
	}
	switch c.Tech {
	case device.EPCM:
		return c.EPCM.Validate()
	case device.OPCM:
		return c.OPCM.Validate()
	default:
		return fmt.Errorf("crossbar: unknown technology %v", c.Tech)
	}
}

// Stats counts the hardware events an array has performed. The
// architecture simulator converts these into time and energy using the
// cost tables in internal/energy.
type Stats struct {
	CellWrites     int64 // device programming events
	VMMOps         int64 // whole-array analog VMM steps
	RowActivations int64 // driven rows summed over VMM steps
	ADCConversions int64 // analog→digital conversions
	DACConversions int64 // digital→analog input conversions (driven rows)
	WavelengthOps  int64 // per-wavelength column readouts (oPCM MMM)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.CellWrites += other.CellWrites
	s.VMMOps += other.VMMOps
	s.RowActivations += other.RowActivations
	s.ADCConversions += other.ADCConversions
	s.DACConversions += other.DACConversions
	s.WavelengthOps += other.WavelengthOps
}

// Array is a programmed 1T1R crossbar.
type Array struct {
	cfg   Config
	rng   *rand.Rand
	ecell [][]*device.EPCMCell
	ocell [][]*device.OPCMCell
	// programmed mirrors the logical bits for introspection/tests.
	programmed *bitops.Matrix
	stats      Stats
	// faults maps (row, col) → stuck state; reapplied after Program.
	faults map[[2]int]bool
}

// NewArray allocates an unprogrammed array (all cells logic 0).
func NewArray(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{cfg: cfg}
	if !cfg.Ideal {
		a.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	switch cfg.Tech {
	case device.EPCM:
		a.ecell = make([][]*device.EPCMCell, cfg.Rows)
		for r := range a.ecell {
			a.ecell[r] = make([]*device.EPCMCell, cfg.Cols)
		}
	case device.OPCM:
		a.ocell = make([][]*device.OPCMCell, cfg.Rows)
		for r := range a.ocell {
			a.ocell[r] = make([]*device.OPCMCell, cfg.Cols)
		}
	}
	a.programmed = bitops.NewMatrix(cfg.Rows, cfg.Cols)
	a.programAll(a.programmed) // establish defined state in every cell
	a.stats = Stats{}          // initial programming is free (manufacture)
	return a, nil
}

// Config returns the array configuration.
func (a *Array) Config() Config { return a.cfg }

// Stats returns a copy of the accumulated event counters.
func (a *Array) Stats() Stats { return a.stats }

// ResetStats zeroes the event counters.
func (a *Array) ResetStats() { a.stats = Stats{} }

// Rows and Cols report the array dimensions.
func (a *Array) Rows() int { return a.cfg.Rows }
func (a *Array) Cols() int { return a.cfg.Cols }

// Programmed returns the logical bit matrix currently stored (clone).
func (a *Array) Programmed() *bitops.Matrix { return a.programmed.Clone() }

// Program writes the given bit matrix into the array. The matrix must
// match the array dimensions exactly; use internal/mapping for layouts
// smaller than the array.
func (a *Array) Program(m *bitops.Matrix) error {
	if m.Rows() != a.cfg.Rows || m.Cols() != a.cfg.Cols {
		return fmt.Errorf("crossbar: program %dx%d into %dx%d array",
			m.Rows(), m.Cols(), a.cfg.Rows, a.cfg.Cols)
	}
	a.programAll(m)
	a.programmed = m.Clone()
	a.applyFaults() // defects survive reprogramming
	return nil
}

func (a *Array) programAll(m *bitops.Matrix) {
	for r := 0; r < a.cfg.Rows; r++ {
		for c := 0; c < a.cfg.Cols; c++ {
			bit := m.Get(r, c)
			switch a.cfg.Tech {
			case device.EPCM:
				a.ecell[r][c] = device.NewEPCMCell(a.cfg.EPCM, bit, a.rng)
			case device.OPCM:
				a.ocell[r][c] = device.NewOPCMCell(a.cfg.OPCM, bit, a.rng)
			}
			a.stats.CellWrites++
		}
	}
}

// Age advances every cell's post-programming age (ePCM drift study).
func (a *Array) Age(seconds float64) {
	if a.cfg.Tech != device.EPCM {
		return
	}
	for r := range a.ecell {
		for c := range a.ecell[r] {
			a.ecell[r][c].Age(seconds)
		}
	}
}

// columnSignal returns the accumulated analog signal of column c for the
// driven row set (ePCM: current in A; oPCM: photocurrent in A).
func (a *Array) columnSignal(input *bitops.Vector, c int) float64 {
	sum := 0.0
	for r := 0; r < a.cfg.Rows; r++ {
		if !input.Get(r) {
			continue
		}
		switch a.cfg.Tech {
		case device.EPCM:
			sum += a.ecell[r][c].ReadCurrent(a.rng)
		case device.OPCM:
			sum += a.ocell[r][c].Photocurrent(a.rng)
		}
	}
	return sum
}

// unitLevels returns the per-cell ON and OFF signal contributions used
// by the ADC decode.
func (a *Array) unitLevels() (on, off float64) {
	switch a.cfg.Tech {
	case device.EPCM:
		p := a.cfg.EPCM
		return p.GOn * p.ReadVoltage, p.GOff * p.ReadVoltage
	default:
		p := a.cfg.OPCM
		full := p.InputPowerMW * 1e-3 * p.Responsivity
		return full * p.THigh, full * p.TLow
	}
}

// decodeCount inverts the accumulation model: a column driven by k
// active rows of which c store ON carries signal ≈ c·on + (k−c)·off, so
// c ≈ (signal − k·off)/(on − off), clamped to the ADC range.
func (a *Array) decodeCount(signal float64, activeRows int) int {
	on, off := a.unitLevels()
	est := (signal - float64(activeRows)*off) / (on - off)
	n := int(math.Round(est))
	if n < 0 {
		n = 0
	}
	maxCount := (1 << uint(a.cfg.ADCBits)) - 1
	if n > maxCount {
		n = maxCount
	}
	if n > activeRows {
		n = activeRows
	}
	return n
}

// VMM performs one analog vector-matrix multiplication: input bit i
// drives row i, and every column's accumulated signal is converted by
// the (shared) ADCs. The returned slice holds, per column, the decoded
// count of ON cells among the driven rows — for a TacitMap-programmed
// column this is exactly Popcount(XNOR(x, w)).
func (a *Array) VMM(input *bitops.Vector) ([]int, error) {
	if input.Len() != a.cfg.Rows {
		return nil, fmt.Errorf("crossbar: input length %d != rows %d", input.Len(), a.cfg.Rows)
	}
	active := input.Popcount()
	out := make([]int, a.cfg.Cols)
	for c := 0; c < a.cfg.Cols; c++ {
		out[c] = a.decodeCount(a.columnSignal(input, c), active)
	}
	a.stats.VMMOps++
	a.stats.RowActivations += int64(active)
	a.stats.DACConversions += int64(active)
	a.stats.ADCConversions += int64(a.cfg.Cols)
	return out, nil
}

// ADCStepsPerVMM returns how many sequential ADC conversion rounds one
// VMM needs under the configured ADC sharing (ceil(cols / adcCount)
// with one ADC per ColumnsPerADC columns — i.e. ColumnsPerADC rounds).
func (a *Array) ADCStepsPerVMM() int { return a.cfg.ColumnsPerADC }

// MMM performs a wavelength-division-multiplexed matrix-matrix multiply
// on an oPCM array: each input vector rides its own wavelength through
// the same column, and per-column per-wavelength photodetection recovers
// one count per (column, wavelength). Crosstalk couples a fraction of
// the aggregate other-wavelength signal into each channel before
// decoding. Returns counts[k][col] for input k.
//
// Calling MMM on an ePCM array returns an error: frequency multiplexing
// has no electrical equivalent (paper §II-C).
func (a *Array) MMM(inputs []*bitops.Vector) ([][]int, error) {
	if a.cfg.Tech != device.OPCM {
		return nil, fmt.Errorf("crossbar: MMM requires oPCM, array is %v", a.cfg.Tech)
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("crossbar: MMM with no inputs")
	}
	for i, in := range inputs {
		if in.Len() != a.cfg.Rows {
			return nil, fmt.Errorf("crossbar: input %d length %d != rows %d", i, in.Len(), a.cfg.Rows)
		}
	}
	k := len(inputs)
	xt := a.cfg.OPCM.CrossTalkLinear()
	out := make([][]int, k)
	signals := make([][]float64, k)
	for i, in := range inputs {
		signals[i] = make([]float64, a.cfg.Cols)
		for c := 0; c < a.cfg.Cols; c++ {
			signals[i][c] = a.columnSignal(in, c)
		}
	}
	for i, in := range inputs {
		out[i] = make([]int, a.cfg.Cols)
		active := in.Popcount()
		for c := 0; c < a.cfg.Cols; c++ {
			s := signals[i][c]
			if xt > 0 && k > 1 {
				var other float64
				for j := range signals {
					if j != i {
						other += signals[j][c]
					}
				}
				s += xt * other
			}
			out[i][c] = a.decodeCount(s, active)
		}
		a.stats.WavelengthOps += int64(a.cfg.Cols)
		a.stats.DACConversions += int64(active)
		a.stats.ADCConversions += int64(a.cfg.Cols)
	}
	// One physical crossbar activation regardless of K — the source of
	// EinsteinBarrier's energy advantage (paper §VI-B observation 2).
	a.stats.VMMOps++
	a.stats.RowActivations += int64(maxActive(inputs))
	return out, nil
}

func maxActive(inputs []*bitops.Vector) int {
	m := 0
	for _, in := range inputs {
		if pc := in.Popcount(); pc > m {
			m = pc
		}
	}
	return m
}
