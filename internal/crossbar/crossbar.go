// Package crossbar simulates analog in-memory compute arrays.
//
// Two array organizations from the paper are modeled:
//
//   - Array: a conventional 1T1R crossbar (one PCM device per cell) with
//     DACs on the rows and ADCs on the columns. Driving a set of rows
//     accumulates per-column cell currents (Kirchhoff) which the ADC
//     decodes back to an integer count. This is the substrate TacitMap
//     targets: all columns are evaluated in a single VMM step.
//
//   - DiffArray (differential.go): a 2T2R crossbar with a pre-charge
//     sense amplifier (PCSA) per column pair, as used by the
//     CustBinaryMap baseline (Hirtzlin et al.): one row is activated per
//     step and each PCSA emits one XNOR bit, followed by digital
//     popcount circuitry.
//
// Both organizations support ePCM (current-domain) and oPCM
// (photocurrent-domain) cells from internal/device. All analog effects
// — programming variability, read noise, drift, WDM crosstalk — are
// injected at the device level, so decoding errors propagate to the
// returned counts exactly as they would in hardware.
//
// # Storage layout
//
// An array does not hold per-cell objects. Each array owns flat
// struct-of-arrays planes — contiguous []float64 slices indexed
// r*Cols+c — holding the as-programmed conductance/transmittance, the
// per-cell age (ePCM drift state), and the deterministic per-read
// signal. The device physics live in the pure functions on
// device.EPCMParams / device.OPCMParams; the hot loops here stream the
// signal plane row-major over the driven-row set, which the packed
// input vector supplies word-wise (trailing-zero scan). See DESIGN.md
// "Flat analog storage" for the layout and the RNG-ordering contract.
package crossbar

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/device"
)

const wordBits = 64

// Config describes a 1T1R crossbar array.
type Config struct {
	// Rows and Cols are the physical array dimensions.
	Rows, Cols int
	// Tech selects the cell technology.
	Tech device.Technology
	// EPCM / OPCM hold the device parameters for the chosen technology.
	EPCM device.EPCMParams
	OPCM device.OPCMParams
	// Seed seeds the array's private RNG. Ignored if Ideal.
	Seed int64
	// Ideal disables all variability and noise (ground-truth mode).
	Ideal bool
	// ColumnsPerADC is the ADC sharing factor: one ADC serves this many
	// columns via an analog mux, serializing conversions. 1 = one ADC
	// per column (the paper's footnote-1 idealization); the evaluation
	// default is 8. Must divide nothing — ceil division is used.
	ColumnsPerADC int
	// ADCBits bounds the decodable count range to 2^ADCBits−1.
	ADCBits int
}

// DefaultConfig returns the evaluation-default 256×256 array.
func DefaultConfig(tech device.Technology) Config {
	return Config{
		Rows:          256,
		Cols:          256,
		Tech:          tech,
		EPCM:          device.DefaultEPCMParams(),
		OPCM:          device.DefaultOPCMParams(),
		ColumnsPerADC: 8,
		ADCBits:       9, // counts up to 511 ≥ 256 active rows
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Rows <= 0 || c.Cols <= 0:
		return fmt.Errorf("crossbar: non-positive dims %dx%d", c.Rows, c.Cols)
	case c.ColumnsPerADC <= 0:
		return fmt.Errorf("crossbar: ColumnsPerADC must be ≥ 1, got %d", c.ColumnsPerADC)
	case c.ADCBits <= 0 || c.ADCBits > 16:
		return fmt.Errorf("crossbar: ADCBits %d outside [1,16]", c.ADCBits)
	}
	if (1<<uint(c.ADCBits))-1 < c.Rows {
		return fmt.Errorf("crossbar: %d-bit ADC cannot encode counts up to %d rows", c.ADCBits, c.Rows)
	}
	switch c.Tech {
	case device.EPCM:
		return c.EPCM.Validate()
	case device.OPCM:
		return c.OPCM.Validate()
	default:
		return fmt.Errorf("crossbar: unknown technology %v", c.Tech)
	}
}

// Stats counts the hardware events an array has performed. The
// architecture simulator converts these into time and energy using the
// cost tables in internal/energy.
type Stats struct {
	CellWrites     int64 // device programming events
	VMMOps         int64 // whole-array analog VMM steps
	RowActivations int64 // driven rows summed over VMM steps
	ADCConversions int64 // analog→digital conversions
	DACConversions int64 // digital→analog input conversions (driven rows)
	WavelengthOps  int64 // per-wavelength column readouts (oPCM MMM)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.CellWrites += other.CellWrites
	s.VMMOps += other.VMMOps
	s.RowActivations += other.RowActivations
	s.ADCConversions += other.ADCConversions
	s.DACConversions += other.DACConversions
	s.WavelengthOps += other.WavelengthOps
}

// Array is a programmed 1T1R crossbar.
//
// Cell state is stored as flat per-array planes (struct-of-arrays,
// indexed r*cols+c) rather than per-cell heap objects:
//
//	prog — as-programmed conductance (ePCM, siemens) or transmittance
//	       (oPCM, dimensionless), programming variability applied;
//	age  — seconds since the cell was last programmed (ePCM only);
//	sig  — the deterministic per-read signal in amperes: the drifted
//	       read current G·V for ePCM, the photocurrent P·R·t0 for oPCM.
//
// Drift is folded into sig when Age advances (one math.Pow per RESET
// cell per Age call) instead of being recomputed on every read; the
// per-read noise draws are applied on top of sig in the VMM loops.
//
// An Array is not safe for concurrent use: it owns a private RNG and
// reusable accumulation scratch.
type Array struct {
	cfg        Config
	rng        *rand.Rand
	rows, cols int
	prog       []float64
	age        []float64 // nil for oPCM (no drift)
	sig        []float64
	// programmed mirrors the logical bits for introspection/tests;
	// effective is programmed with stuck faults overridden — the state
	// the cells (and the drift model) actually hold.
	programmed *bitops.Matrix
	effective  *bitops.Matrix
	// stuckMask/stuckState record injected defects; reapplied after
	// Program. nil mask = no faults.
	stuckMask  *bitops.Matrix
	stuckState *bitops.Matrix
	faultCount int
	stats      Stats
	// Reusable scratch for the zero-allocation execution paths.
	acc    []float64 // per-column accumulated signal (cols)
	mmmSig []float64 // per-wavelength signals, k*cols (grown on demand)
	mmmTot []float64 // per-column total signal across wavelengths (allocated on first MMM)
	mmmAct []int     // per-wavelength active-row counts (grown on demand)
}

// NewArray allocates an unprogrammed array (all cells logic 0).
func NewArray(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{cfg: cfg, rows: cfg.Rows, cols: cfg.Cols}
	if !cfg.Ideal {
		a.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	n := cfg.Rows * cfg.Cols
	a.prog = make([]float64, n)
	a.sig = make([]float64, n)
	if cfg.Tech == device.EPCM {
		a.age = make([]float64, n)
	}
	a.acc = make([]float64, cfg.Cols)
	a.programmed = bitops.NewMatrix(cfg.Rows, cfg.Cols)
	a.effective = bitops.NewMatrix(cfg.Rows, cfg.Cols)
	a.programAll(a.programmed) // establish defined state in every cell
	a.stats = Stats{}          // initial programming is free (manufacture)
	return a, nil
}

// Config returns the array configuration.
func (a *Array) Config() Config { return a.cfg }

// Stats returns a copy of the accumulated event counters.
func (a *Array) Stats() Stats { return a.stats }

// ResetStats zeroes the event counters.
func (a *Array) ResetStats() { a.stats = Stats{} }

// Rows and Cols report the array dimensions.
func (a *Array) Rows() int { return a.cfg.Rows }
func (a *Array) Cols() int { return a.cfg.Cols }

// Programmed returns the logical bit matrix currently stored. The
// matrix is a fresh clone on every call (one rows×cols/64-word
// allocation) so callers can mutate it freely; hot paths that only
// need to inspect bits should hold on to one clone instead of calling
// Programmed per step.
func (a *Array) Programmed() *bitops.Matrix { return a.programmed.Clone() }

// Program writes the given bit matrix into the array. The matrix must
// match the array dimensions exactly; use internal/mapping for layouts
// smaller than the array.
func (a *Array) Program(m *bitops.Matrix) error {
	if m.Rows() != a.cfg.Rows || m.Cols() != a.cfg.Cols {
		return fmt.Errorf("crossbar: program %dx%d into %dx%d array",
			m.Rows(), m.Cols(), a.cfg.Rows, a.cfg.Cols)
	}
	a.programAll(m)
	a.programmed.CopyFrom(m)
	a.applyFaults() // defects survive reprogramming
	return nil
}

// programCell programs one plane slot to the given state, drawing
// programming variability from the array RNG.
func (a *Array) programCell(idx int, state bool) {
	switch a.cfg.Tech {
	case device.EPCM:
		g := a.cfg.EPCM.ProgramConductance(state, a.rng)
		a.prog[idx] = g
		a.age[idx] = 0
		a.sig[idx] = g * a.cfg.EPCM.ReadVoltage
	case device.OPCM:
		t0 := a.cfg.OPCM.ProgramTransmittance(state, a.rng)
		a.prog[idx] = t0
		a.sig[idx] = t0 * a.cfg.OPCM.InputPowerMW * 1e-3 * a.cfg.OPCM.Responsivity
	}
}

// programAll programs every cell from the logical matrix, row-major —
// the same per-cell RNG draw order as programming one device after
// another, so a seeded array is bit-identical to the per-cell-object
// implementation this package previously used.
func (a *Array) programAll(m *bitops.Matrix) {
	idx := 0
	for r := 0; r < a.rows; r++ {
		row := m.RowWords(r)
		for c := 0; c < a.cols; c++ {
			a.programCell(idx, row[c>>6]>>(uint(c)&63)&1 == 1)
			idx++
		}
	}
	a.effective.CopyFrom(m)
	a.stats.CellWrites += int64(a.rows * a.cols)
}

// Reprogram re-programs every cell from the currently stored logical
// matrix with a fresh RNG stream reset to the array seed — the
// serving-time recalibration primitive. The pass resets every cell's
// drift age, re-draws programming variability deterministically (the
// planes after any recalibration are a pure function of (seed, stored
// bits) — recalibrating twice yields bit-identical planes), reapplies
// the stuck-at fault mask (recalibration cannot heal physical defects),
// and counts the writes in Stats. It returns the SET (logic 1) and
// RESET (logic 0) write counts so callers can price the pass.
func (a *Array) Reprogram() (setWrites, resetWrites int64) {
	if a.rng != nil {
		a.rng = rand.New(rand.NewSource(a.cfg.Seed))
	}
	a.programAll(a.programmed)
	a.applyFaults()
	var on int64
	for _, w := range a.programmed.Words() {
		on += int64(bits.OnesCount64(w))
	}
	total := int64(a.rows * a.cols)
	return on, total - on
}

// Age advances every cell's post-programming age (ePCM drift study).
// The drift decay is folded into the signal plane here, once per Age
// call, so reads stay a flat multiply-accumulate.
func (a *Array) Age(seconds float64) {
	if a.cfg.Tech != device.EPCM {
		return
	}
	if seconds < 0 {
		panic("crossbar: negative ageing time")
	}
	v := a.cfg.EPCM.ReadVoltage
	idx := 0
	for r := 0; r < a.rows; r++ {
		row := a.effective.RowWords(r)
		for c := 0; c < a.cols; c++ {
			a.age[idx] += seconds
			if row[c>>6]>>(uint(c)&63)&1 == 0 { // only RESET cells drift
				a.sig[idx] = a.prog[idx] * a.cfg.EPCM.DriftFactor(a.age[idx]) * v
			}
			idx++
		}
	}
}

// accumulate streams the driven rows of the array into the per-column
// accumulator acc (length cols, zeroed here) and returns the number of
// active rows. The driven-row set comes word-wise off the packed input
// (trailing-zero scan); each driven row is one contiguous row-major
// pass over the signal plane, so per-column sums are accumulated in
// ascending-row order — the same floating-point summation order as the
// original column-major walk, which keeps ideal-mode outputs
// bit-identical. Per-read noise (one draw per driven ePCM cell, up to
// two per driven oPCM cell) is applied row-major; see DESIGN.md for
// the RNG-ordering contract.
func (a *Array) accumulate(input *bitops.Vector, acc []float64) int {
	for i := range acc {
		acc[i] = 0
	}
	active := 0
	words := input.Words()
	switch a.cfg.Tech {
	case device.EPCM:
		sigma := 0.0
		if a.rng != nil {
			sigma = a.cfg.EPCM.ReadNoiseSigma
		}
		for wi, w := range words {
			for w != 0 {
				r := wi*wordBits + bits.TrailingZeros64(w)
				w &= w - 1
				active++
				row := a.sig[r*a.cols : (r+1)*a.cols]
				if sigma > 0 {
					rng := a.rng
					for c, s := range row {
						s *= 1 + rng.NormFloat64()*sigma
						if s < 0 {
							s = 0
						}
						acc[c] += s
					}
				} else {
					for c, s := range row {
						acc[c] += s
					}
				}
			}
		}
	case device.OPCM:
		p := &a.cfg.OPCM
		rin, sf := p.RelIntensityNoise, p.ShotNoiseFactor
		if a.rng == nil || (rin == 0 && sf == 0) {
			for wi, w := range words {
				for w != 0 {
					r := wi*wordBits + bits.TrailingZeros64(w)
					w &= w - 1
					active++
					row := a.sig[r*a.cols : (r+1)*a.cols]
					for c, s := range row {
						acc[c] += s
					}
				}
			}
			break
		}
		// Noisy optical read: RIN on the transmittance, then √signal
		// shot noise — device.OPCMParams.PhotocurrentFrom with the
		// scalars hoisted out of the per-cell loop.
		rng := a.rng
		pr := p.InputPowerMW * 1e-3 * p.Responsivity
		full := pr * p.THigh
		for wi, w := range words {
			for w != 0 {
				r := wi*wordBits + bits.TrailingZeros64(w)
				w &= w - 1
				active++
				row := a.prog[r*a.cols : (r+1)*a.cols]
				for c, t := range row {
					if rin > 0 {
						t *= 1 + rng.NormFloat64()*rin
						if t < 0 {
							t = 0
						} else if t > 1 {
							t = 1
						}
					}
					i := pr * t
					if sf > 0 {
						i += rng.NormFloat64() * sf * math.Sqrt(math.Max(i, 0)*full)
					}
					acc[c] += i
				}
			}
		}
	}
	return active
}

// unitLevels returns the per-cell ON and OFF signal contributions used
// by the ADC decode.
func (a *Array) unitLevels() (on, off float64) {
	switch a.cfg.Tech {
	case device.EPCM:
		p := a.cfg.EPCM
		return p.GOn * p.ReadVoltage, p.GOff * p.ReadVoltage
	default:
		p := a.cfg.OPCM
		full := p.InputPowerMW * 1e-3 * p.Responsivity
		return full * p.THigh, full * p.TLow
	}
}

// decodeCount inverts the accumulation model: a column driven by k
// active rows of which c store ON carries signal ≈ c·on + (k−c)·off, so
// c ≈ (signal − k·off)/(on − off), clamped to the ADC range.
func (a *Array) decodeCount(signal float64, activeRows int) int {
	on, off := a.unitLevels()
	est := (signal - float64(activeRows)*off) / (on - off)
	n := int(math.Round(est))
	if n < 0 {
		n = 0
	}
	maxCount := (1 << uint(a.cfg.ADCBits)) - 1
	if n > maxCount {
		n = maxCount
	}
	if n > activeRows {
		n = activeRows
	}
	return n
}

// VMM performs one analog vector-matrix multiplication: input bit i
// drives row i, and every column's accumulated signal is converted by
// the (shared) ADCs. The returned slice holds, per column, the decoded
// count of ON cells among the driven rows — for a TacitMap-programmed
// column this is exactly Popcount(XNOR(x, w)).
func (a *Array) VMM(input *bitops.Vector) ([]int, error) {
	return a.VMMInto(input, nil)
}

// VMMInto is the allocation-free form of VMM: it writes the decoded
// counts into dst (length Cols; nil allocates) and returns it. With a
// caller-owned dst the steady-state path performs zero heap
// allocations.
func (a *Array) VMMInto(input *bitops.Vector, dst []int) ([]int, error) {
	if input.Len() != a.cfg.Rows {
		return nil, fmt.Errorf("crossbar: input length %d != rows %d", input.Len(), a.cfg.Rows)
	}
	if dst == nil {
		dst = make([]int, a.cfg.Cols)
	} else if len(dst) != a.cfg.Cols {
		return nil, fmt.Errorf("crossbar: VMMInto dst length %d != cols %d", len(dst), a.cfg.Cols)
	}
	active := a.accumulate(input, a.acc)
	for c, s := range a.acc {
		dst[c] = a.decodeCount(s, active)
	}
	a.stats.VMMOps++
	a.stats.RowActivations += int64(active)
	a.stats.DACConversions += int64(active)
	a.stats.ADCConversions += int64(a.cfg.Cols)
	return dst, nil
}

// ADCStepsPerVMM returns how many sequential ADC conversion rounds one
// VMM needs under the configured ADC sharing (ceil(cols / adcCount)
// with one ADC per ColumnsPerADC columns — i.e. ColumnsPerADC rounds).
func (a *Array) ADCStepsPerVMM() int { return a.cfg.ColumnsPerADC }

// MMM performs a wavelength-division-multiplexed matrix-matrix multiply
// on an oPCM array: each input vector rides its own wavelength through
// the same column, and per-column per-wavelength photodetection recovers
// one count per (column, wavelength). Crosstalk couples a fraction of
// the aggregate other-wavelength signal into each channel before
// decoding. Returns counts[k][col] for input k.
//
// Calling MMM on an ePCM array returns an error: frequency multiplexing
// has no electrical equivalent (paper §II-C).
func (a *Array) MMM(inputs []*bitops.Vector) ([][]int, error) {
	return a.MMMInto(inputs, nil)
}

// MMMInto is the allocation-free form of MMM: dst must be nil (fully
// allocated here) or have one row of length Cols per input (nil rows
// are allocated). The per-wavelength signal planes live in array-owned
// scratch that grows to the largest K seen, so the steady-state path
// performs zero heap allocations.
func (a *Array) MMMInto(inputs []*bitops.Vector, dst [][]int) ([][]int, error) {
	if a.cfg.Tech != device.OPCM {
		return nil, fmt.Errorf("crossbar: MMM requires oPCM, array is %v", a.cfg.Tech)
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("crossbar: MMM with no inputs")
	}
	for i, in := range inputs {
		if in.Len() != a.cfg.Rows {
			return nil, fmt.Errorf("crossbar: input %d length %d != rows %d", i, in.Len(), a.cfg.Rows)
		}
	}
	k := len(inputs)
	if dst == nil {
		dst = make([][]int, k)
	} else if len(dst) != k {
		return nil, fmt.Errorf("crossbar: MMMInto dst has %d rows for %d inputs", len(dst), k)
	}
	for i := range dst {
		if dst[i] == nil {
			dst[i] = make([]int, a.cfg.Cols)
		} else if len(dst[i]) != a.cfg.Cols {
			return nil, fmt.Errorf("crossbar: MMMInto dst row %d length %d != cols %d", i, len(dst[i]), a.cfg.Cols)
		}
	}
	if cap(a.mmmSig) < k*a.cols {
		a.mmmSig = make([]float64, k*a.cols)
	}
	if cap(a.mmmAct) < k {
		a.mmmAct = make([]int, k)
	}
	if a.mmmTot == nil {
		a.mmmTot = make([]float64, a.cols)
	}
	sig := a.mmmSig[:k*a.cols]
	act := a.mmmAct[:k]
	for i, in := range inputs {
		act[i] = a.accumulate(in, sig[i*a.cols:(i+1)*a.cols])
	}
	xt := a.cfg.OPCM.CrossTalkLinear()
	coupled := xt > 0 && k > 1
	if coupled {
		// Crosstalk couples each channel to the aggregate of all the
		// others: precompute the per-column total once (O(K·cols)) so
		// each channel subtracts itself, instead of re-summing the K−1
		// other channels per (channel, column) pair (O(K²·cols)).
		tot := a.mmmTot
		for c := range tot {
			tot[c] = 0
		}
		for i := 0; i < k; i++ {
			for c, s := range sig[i*a.cols : (i+1)*a.cols] {
				tot[c] += s
			}
		}
	}
	for i := range inputs {
		row := sig[i*a.cols : (i+1)*a.cols]
		out := dst[i]
		active := act[i]
		if coupled {
			tot := a.mmmTot
			for c, s := range row {
				out[c] = a.decodeCount(s+xt*(tot[c]-s), active)
			}
		} else {
			for c, s := range row {
				out[c] = a.decodeCount(s, active)
			}
		}
		a.stats.WavelengthOps += int64(a.cfg.Cols)
		a.stats.DACConversions += int64(active)
		a.stats.ADCConversions += int64(a.cfg.Cols)
	}
	// One physical crossbar activation regardless of K — the source of
	// EinsteinBarrier's energy advantage (paper §VI-B observation 2).
	a.stats.VMMOps++
	a.stats.RowActivations += int64(maxActive(inputs))
	return dst, nil
}

// forEachSet calls fn with the index of every set bit in the packed
// word slice, ascending. The hot accumulate loops keep this scan
// inlined by hand; the cold paths (fault reapplication, defect
// tallies) share it here.
func forEachSet(words []uint64, fn func(i int)) {
	for wi, w := range words {
		for w != 0 {
			fn(wi*wordBits + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

func maxActive(inputs []*bitops.Vector) int {
	m := 0
	for _, in := range inputs {
		if pc := in.Popcount(); pc > m {
			m = pc
		}
	}
	return m
}
