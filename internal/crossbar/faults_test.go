package crossbar

import (
	"math"
	"math/rand"
	"testing"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/device"
)

func TestFaultModelValidate(t *testing.T) {
	bad := []FaultModel{
		{StuckOnRate: -0.1},
		{StuckOffRate: -0.1},
		{StuckOnRate: 0.6, StuckOffRate: 0.6},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if err := (FaultModel{StuckOnRate: 0.01, StuckOffRate: 0.01}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectFaultsCounts(t *testing.T) {
	cfg := smallConfig(device.EPCM, true, 0)
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, cfg.Rows, cfg.Cols)
	if err := arr.Program(m); err != nil {
		t.Fatal(err)
	}
	flipped, err := arr.InjectFaults(FaultModel{StuckOnRate: 0.02, StuckOffRate: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	total := cfg.Rows * cfg.Cols
	count := arr.FaultCount()
	// ~4% of cells defective; roughly half change logical content.
	if count < total/50 || count > total/10 {
		t.Fatalf("fault count %d implausible for 4%% of %d", count, total)
	}
	if flipped <= 0 || flipped > count {
		t.Fatalf("flipped = %d of %d faults", flipped, count)
	}
}

func TestFaultedVMMMatchesEffectiveBits(t *testing.T) {
	// The analog result must follow the *effective* (faulty) bits, not
	// the programmed ones.
	cfg := smallConfig(device.EPCM, true, 0)
	arr, _ := NewArray(cfg)
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, cfg.Rows, cfg.Cols)
	_ = arr.Program(m)
	if _, err := arr.InjectFaults(FaultModel{StuckOnRate: 0.05, StuckOffRate: 0.05, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	eff := arr.EffectiveBits()
	x := randomVector(rng, cfg.Rows)
	got, err := arr.VMM(x)
	if err != nil {
		t.Fatal(err)
	}
	mismatchProgrammed := false
	for c := 0; c < cfg.Cols; c++ {
		if got[c] != bitops.AndPopcount(x, eff.Col(c)) {
			t.Fatalf("col %d disagrees with effective bits", c)
		}
		if got[c] != bitops.AndPopcount(x, m.Col(c)) {
			mismatchProgrammed = true
		}
	}
	if !mismatchProgrammed {
		t.Fatal("10% defects should visibly corrupt some column")
	}
}

func TestFaultsSurviveReprogramming(t *testing.T) {
	cfg := smallConfig(device.EPCM, true, 0)
	arr, _ := NewArray(cfg)
	if _, err := arr.InjectFaults(FaultModel{StuckOnRate: 0.1, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	before := arr.FaultCount()
	rng := rand.New(rand.NewSource(6))
	_ = arr.Program(randomMatrix(rng, cfg.Rows, cfg.Cols))
	if arr.FaultCount() != before {
		t.Fatal("reprogramming must not heal defects")
	}
	// Every stuck-ON cell must read 1 regardless of programming.
	eff := arr.EffectiveBits()
	zero := bitops.NewMatrix(cfg.Rows, cfg.Cols)
	_ = arr.Program(zero)
	eff2 := arr.EffectiveBits()
	onCells := 0
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if eff2.Get(r, c) {
				onCells++
			}
		}
	}
	if onCells != arr.FaultCount() {
		// all faults were stuck-ON in this model
		t.Fatalf("expected %d stuck-ON survivors, got %d", arr.FaultCount(), onCells)
	}
	_ = eff
}

func TestMaxPopcountErrorBound(t *testing.T) {
	// The headline tolerance argument: with f defects per column, any
	// popcount deviates by at most f.
	cfg := smallConfig(device.EPCM, true, 0)
	arr, _ := NewArray(cfg)
	rng := rand.New(rand.NewSource(8))
	m := randomMatrix(rng, cfg.Rows, cfg.Cols)
	_ = arr.Program(m)
	_, _ = arr.InjectFaults(FaultModel{StuckOnRate: 0.03, StuckOffRate: 0.03, Seed: 4})
	bound := arr.MaxPopcountError()
	x := randomVector(rng, cfg.Rows)
	got, _ := arr.VMM(x)
	worst := 0
	for c := 0; c < cfg.Cols; c++ {
		ideal := bitops.AndPopcount(x, m.Col(c))
		if d := int(math.Abs(float64(got[c] - ideal))); d > worst {
			worst = d
		}
	}
	if worst > bound {
		t.Fatalf("observed popcount error %d exceeds bound %d", worst, bound)
	}
}

func TestInjectFaultsRejectsBadModel(t *testing.T) {
	arr, _ := NewArray(smallConfig(device.EPCM, true, 0))
	if _, err := arr.InjectFaults(FaultModel{StuckOnRate: 2}); err == nil {
		t.Fatal("expected validation error")
	}
}
