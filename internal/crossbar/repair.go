package crossbar

import (
	"fmt"
	"sort"
)

// Column repair. Memory arrays ship with spare columns; a post-test
// repair pass steers logical columns away from the worst physical
// columns via the column decoder's remap registers. For a TacitMap
// array this directly bounds the popcount error: after repair, the
// remaining defects-per-used-column is minimized.

// RepairPlan is the outcome of planning a repair.
type RepairPlan struct {
	// Spares is the number of spare (unused) physical columns available.
	Spares int
	// Remapped lists physical columns taken out of service, worst first.
	Remapped []int
	// ResidualWorst is the defect count of the worst column still in
	// service after repair.
	ResidualWorst int
}

// PlanRepair chooses which physical columns to retire. usedCols is how
// many logical columns the mapping needs; the rest of the array is
// spare. Columns are retired in decreasing defect count until spares
// run out or no defective columns remain.
func (a *Array) PlanRepair(usedCols int) (RepairPlan, error) {
	if usedCols < 0 || usedCols > a.cfg.Cols {
		return RepairPlan{}, fmt.Errorf("crossbar: usedCols %d outside [0,%d]", usedCols, a.cfg.Cols)
	}
	plan := RepairPlan{Spares: a.cfg.Cols - usedCols}
	type colDefects struct{ col, n int }
	var ranked []colDefects
	for c, n := range a.defectsPerColumn() {
		if n > 0 {
			ranked = append(ranked, colDefects{c, n})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].col < ranked[j].col
	})
	for i, cd := range ranked {
		if i >= plan.Spares {
			plan.ResidualWorst = cd.n
			break
		}
		plan.Remapped = append(plan.Remapped, cd.col)
	}
	return plan, nil
}

// ColumnMap returns the logical→physical column assignment implied by a
// repair plan: logical columns fill the healthy physical columns in
// order, skipping retired ones. It errs if the plan retires so many
// columns that usedCols no longer fit.
func (a *Array) ColumnMap(usedCols int, plan RepairPlan) ([]int, error) {
	retired := make(map[int]bool, len(plan.Remapped))
	for _, c := range plan.Remapped {
		retired[c] = true
	}
	out := make([]int, 0, usedCols)
	for c := 0; c < a.cfg.Cols && len(out) < usedCols; c++ {
		if !retired[c] {
			out = append(out, c)
		}
	}
	if len(out) < usedCols {
		return nil, fmt.Errorf("crossbar: only %d healthy columns for %d logical", len(out), usedCols)
	}
	return out, nil
}

// RepairEffectiveness reports the worst-column defect count before and
// after applying the plan — the quantity that bounds popcount error.
func (a *Array) RepairEffectiveness(usedCols int, plan RepairPlan) (before, after int, err error) {
	before = a.MaxPopcountError()
	colMap, err := a.ColumnMap(usedCols, plan)
	if err != nil {
		return 0, 0, err
	}
	perCol := a.defectsPerColumn()
	for _, c := range colMap {
		if perCol[c] > after {
			after = perCol[c]
		}
	}
	return before, after, nil
}
