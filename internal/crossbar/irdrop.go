package crossbar

import (
	"fmt"
	"math/bits"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/device"
)

// IR drop. In a real electrical crossbar the word/bit lines have finite
// wire resistance, so a cell far from the drivers sees a degraded read
// voltage that scales with the aggregate current flowing through the
// shared wire — the classic reason electrical crossbars do not scale
// arbitrarily (paper §II: "large capacitances of the wiring within the
// memory IP ... limits their scalability") and one of the physical
// motivations for the optical VCores, whose waveguides carry no such
// resistive accumulation.
//
// The model is the standard first-order lumped approximation: the
// voltage at cell (r, c) is attenuated by the current drawn through the
// r upstream word-line segments and c upstream bit-line segments, each
// of resistance SegmentOhm, with the aggregate current estimated from
// the active-row count:
//
//	V_eff(r,c) = V / (1 + SegmentOhm · (r + c) · G_on · activeRows/2)
//
// It is deliberately conservative and monotone: attenuation grows with
// distance, array size, wire resistance and workload density, which is
// all the evaluation needs (exact SPICE-level solves are out of scope).

// IRDropModel parameterizes the wire non-ideality.
type IRDropModel struct {
	// SegmentOhm is the wire resistance of one cell-to-cell segment.
	// Typical advanced-node metal: 0.5–5 Ω per segment.
	SegmentOhm float64
}

// Validate checks the model.
func (m IRDropModel) Validate() error {
	if m.SegmentOhm < 0 {
		return fmt.Errorf("crossbar: negative segment resistance %g", m.SegmentOhm)
	}
	return nil
}

// attenuation returns the multiplicative voltage factor at (r, c).
func (m IRDropModel) attenuation(r, c, activeRows int, gOn float64) float64 {
	if m.SegmentOhm == 0 {
		return 1
	}
	return 1 / (1 + m.SegmentOhm*float64(r+c)*gOn*float64(activeRows)/2)
}

// VMMWithIRDrop performs a VMM with the wire model applied. Only
// meaningful for ePCM arrays (optical waveguides do not accumulate
// resistive drop); calling it on an oPCM array returns an error.
func (a *Array) VMMWithIRDrop(input *bitops.Vector, m IRDropModel) ([]int, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if a.cfg.Tech != device.EPCM {
		return nil, fmt.Errorf("crossbar: IR drop applies to ePCM arrays, have %v", a.cfg.Tech)
	}
	if input.Len() != a.cfg.Rows {
		return nil, fmt.Errorf("crossbar: input length %d != rows %d", input.Len(), a.cfg.Rows)
	}
	active := input.Popcount()
	gOn := a.cfg.EPCM.GOn
	sigma := 0.0
	if a.rng != nil {
		sigma = a.cfg.EPCM.ReadNoiseSigma
	}
	acc := a.acc
	for i := range acc {
		acc[i] = 0
	}
	// Same word-wise driven-row scan as VMM, with the per-cell wire
	// attenuation applied on top of the (noisy) signal plane.
	words := input.Words()
	for wi, w := range words {
		for w != 0 {
			r := wi*wordBits + bits.TrailingZeros64(w)
			w &= w - 1
			row := a.sig[r*a.cols : (r+1)*a.cols]
			for c, s := range row {
				if sigma > 0 {
					s *= 1 + a.rng.NormFloat64()*sigma
					if s < 0 {
						s = 0
					}
				}
				acc[c] += s * m.attenuation(r, c, active, gOn)
			}
		}
	}
	out := make([]int, a.cfg.Cols)
	for c, s := range acc {
		out[c] = a.decodeCount(s, active)
	}
	a.stats.VMMOps++
	a.stats.RowActivations += int64(active)
	a.stats.DACConversions += int64(active)
	a.stats.ADCConversions += int64(a.cfg.Cols)
	return out, nil
}

// WorstCaseAttenuation reports the voltage factor at the far corner of
// the array under a fully active input — the design-time scaling check.
func (a *Array) WorstCaseAttenuation(m IRDropModel) float64 {
	return m.attenuation(a.cfg.Rows-1, a.cfg.Cols-1, a.cfg.Rows, a.cfg.EPCM.GOn)
}

// MaxCleanArraySize returns the largest square array dimension whose
// worst-case attenuation stays above minFactor with this wire model —
// the electrical scaling limit the photonic design sidesteps.
func (m IRDropModel) MaxCleanArraySize(p device.EPCMParams, minFactor float64) int {
	if m.SegmentOhm == 0 {
		return 1 << 20 // effectively unbounded
	}
	best := 0
	for n := 2; n <= 4096; n *= 2 {
		att := m.attenuation(n-1, n-1, n, p.GOn)
		if att >= minFactor {
			best = n
		} else {
			break
		}
	}
	return best
}
