package crossbar

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/device"
)

// Golden pinning of the ideal-mode (noise-free) analog outputs. The
// flat struct-of-arrays storage refactor must leave every ideal-mode
// decoded count bit-identical to the original per-cell-object
// implementation; these goldens were captured from that implementation
// (set UPDATE_GOLDENS=1 to regenerate — only do this deliberately).
//
// Noisy-mode outputs are NOT golden-pinned: the storage refactor
// re-pinned the per-read RNG draw order from column-major to row-major
// (see DESIGN.md "Flat analog storage"), and noisy behavior is covered
// by the exact-decode property tests instead.

type crossbarGoldens struct {
	// EPCMVMM[i] is the decoded count vector for input i on an ideal
	// ePCM array with deliberately word-unaligned dims (100×37).
	EPCMVMM [][]int `json:"epcm_vmm"`
	// EPCMAgedVMM repeats the ePCM VMM after Age(3600) (drift active).
	EPCMAgedVMM [][]int `json:"epcm_aged_vmm"`
	// EPCMIRDropVMM is VMMWithIRDrop at SegmentOhm=2.
	EPCMIRDropVMM [][]int `json:"epcm_irdrop_vmm"`
	// OPCMVMM[i] is the ideal oPCM VMM output (64×32).
	OPCMVMM [][]int `json:"opcm_vmm"`
	// OPCMMMM[k][c] is one ideal K=5 MMM with the default −30 dB
	// crosstalk floor applied (deterministic even in ideal mode).
	OPCMMMM [][]int `json:"opcm_mmm"`
}

const goldenPath = "testdata/ideal_goldens.json"

func computeCrossbarGoldens(t *testing.T) crossbarGoldens {
	t.Helper()
	var g crossbarGoldens

	// ePCM, word-unaligned dims to stress the word-wise row scan.
	ecfg := DefaultConfig(device.EPCM)
	ecfg.Rows, ecfg.Cols = 100, 37
	ecfg.ADCBits = 7
	ecfg.Ideal = true
	earr, err := NewArray(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	if err := earr.Program(randomMatrix(rng, ecfg.Rows, ecfg.Cols)); err != nil {
		t.Fatal(err)
	}
	inputs := make([]*bitops.Vector, 8)
	for i := range inputs {
		inputs[i] = randomVector(rng, ecfg.Rows)
	}
	for _, in := range inputs {
		out, err := earr.VMM(in)
		if err != nil {
			t.Fatal(err)
		}
		g.EPCMVMM = append(g.EPCMVMM, out)
		ir, err := earr.VMMWithIRDrop(in, IRDropModel{SegmentOhm: 2})
		if err != nil {
			t.Fatal(err)
		}
		g.EPCMIRDropVMM = append(g.EPCMIRDropVMM, ir)
	}
	earr.Age(3600)
	for _, in := range inputs {
		out, err := earr.VMM(in)
		if err != nil {
			t.Fatal(err)
		}
		g.EPCMAgedVMM = append(g.EPCMAgedVMM, out)
	}

	// oPCM VMM + MMM (crosstalk floor is deterministic in ideal mode).
	ocfg := DefaultConfig(device.OPCM)
	ocfg.Rows, ocfg.Cols = 64, 32
	ocfg.ADCBits = 7
	ocfg.Ideal = true
	oarr, err := NewArray(ocfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := oarr.Program(randomMatrix(rng, ocfg.Rows, ocfg.Cols)); err != nil {
		t.Fatal(err)
	}
	var mmmIn []*bitops.Vector
	for i := 0; i < 5; i++ {
		mmmIn = append(mmmIn, randomVector(rng, ocfg.Rows))
	}
	for _, in := range mmmIn {
		out, err := oarr.VMM(in)
		if err != nil {
			t.Fatal(err)
		}
		g.OPCMVMM = append(g.OPCMVMM, out)
	}
	mmm, err := oarr.MMM(mmmIn)
	if err != nil {
		t.Fatal(err)
	}
	g.OPCMMMM = mmm
	return g
}

func TestIdealOutputsMatchGoldens(t *testing.T) {
	got := computeCrossbarGoldens(t)
	if os.Getenv("UPDATE_GOLDENS") == "1" {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing goldens (run with UPDATE_GOLDENS=1 to capture): %v", err)
	}
	var want crossbarGoldens
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.EPCMVMM, want.EPCMVMM) {
		t.Error("ideal ePCM VMM counts diverged from pre-refactor goldens")
	}
	if !reflect.DeepEqual(got.EPCMAgedVMM, want.EPCMAgedVMM) {
		t.Error("ideal aged ePCM VMM counts diverged from pre-refactor goldens")
	}
	if !reflect.DeepEqual(got.EPCMIRDropVMM, want.EPCMIRDropVMM) {
		t.Error("ideal IR-drop VMM counts diverged from pre-refactor goldens")
	}
	if !reflect.DeepEqual(got.OPCMVMM, want.OPCMVMM) {
		t.Error("ideal oPCM VMM counts diverged from pre-refactor goldens")
	}
	if !reflect.DeepEqual(got.OPCMMMM, want.OPCMMMM) {
		t.Error("ideal oPCM MMM counts diverged from pre-refactor goldens")
	}
}
