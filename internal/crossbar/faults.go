package crossbar

import (
	"fmt"
	"math/rand"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/device"
)

// Fault injection. PCM arrays ship with stuck-at defects (cells whose
// phase can no longer be switched: stuck-SET from void formation,
// stuck-RESET from delamination). BNN accelerators tolerate a modest
// defect density because a flipped weight bit shifts one popcount by at
// most one — this file lets tests and studies quantify that margin for
// both array organizations.

// FaultModel describes a stuck-at defect population.
type FaultModel struct {
	// StuckOnRate is the fraction of cells stuck in the ON
	// (low-resistance / transparent) state.
	StuckOnRate float64
	// StuckOffRate is the fraction stuck OFF.
	StuckOffRate float64
	// Seed drives defect placement.
	Seed int64
}

// Validate checks the model.
func (f FaultModel) Validate() error {
	if f.StuckOnRate < 0 || f.StuckOffRate < 0 || f.StuckOnRate+f.StuckOffRate > 1 {
		return fmt.Errorf("crossbar: bad fault rates on=%g off=%g", f.StuckOnRate, f.StuckOffRate)
	}
	return nil
}

// InjectFaults overwrites a random subset of cells with stuck states.
// It returns the number of cells whose *logical* content changed (a
// stuck-ON fault under a stored 1 is harmless). Subsequent Program
// calls do not heal the defects: the fault map is reapplied.
func (a *Array) InjectFaults(f FaultModel) (flipped int, err error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(f.Seed))
	a.faults = make(map[[2]int]bool)
	for r := 0; r < a.cfg.Rows; r++ {
		for c := 0; c < a.cfg.Cols; c++ {
			u := rng.Float64()
			var stuck, state bool
			switch {
			case u < f.StuckOnRate:
				stuck, state = true, true
			case u < f.StuckOnRate+f.StuckOffRate:
				stuck, state = true, false
			}
			if !stuck {
				continue
			}
			a.faults[[2]int{r, c}] = state
			if a.programmed.Get(r, c) != state {
				flipped++
			}
		}
	}
	a.applyFaults()
	return flipped, nil
}

// applyFaults forces every defective cell to its stuck state.
func (a *Array) applyFaults() {
	for pos, state := range a.faults {
		r, c := pos[0], pos[1]
		switch a.cfg.Tech {
		case device.EPCM:
			a.ecell[r][c] = device.NewEPCMCell(a.cfg.EPCM, state, a.rng)
		case device.OPCM:
			a.ocell[r][c] = device.NewOPCMCell(a.cfg.OPCM, state, a.rng)
		}
	}
}

// FaultCount returns the number of injected defects.
func (a *Array) FaultCount() int { return len(a.faults) }

// EffectiveBits returns the logical matrix actually stored, i.e. the
// programmed bits with stuck cells overridden — what the analog compute
// really sees.
func (a *Array) EffectiveBits() *bitops.Matrix {
	m := a.programmed.Clone()
	for pos, state := range a.faults {
		m.Set(pos[0], pos[1], state)
	}
	return m
}

// MaxPopcountError returns, for a faulty TacitMap-style array, the
// worst-case absolute popcount deviation of any column: each stuck cell
// in a column shifts that column's count by at most one.
func (a *Array) MaxPopcountError() int {
	perCol := make(map[int]int)
	for pos := range a.faults {
		perCol[pos[1]]++
	}
	worst := 0
	for _, n := range perCol {
		if n > worst {
			worst = n
		}
	}
	return worst
}
