package crossbar

import (
	"fmt"
	"math/bits"
	"math/rand"

	"einsteinbarrier/internal/bitops"
)

// Fault injection. PCM arrays ship with stuck-at defects (cells whose
// phase can no longer be switched: stuck-SET from void formation,
// stuck-RESET from delamination). BNN accelerators tolerate a modest
// defect density because a flipped weight bit shifts one popcount by at
// most one — this file lets tests and studies quantify that margin for
// both array organizations.
//
// Defects are stored as two packed bit matrices (the fault mask and the
// stuck value under the mask) and written straight into the conductance
// planes in deterministic row-major order — the per-cell-object
// implementation reapplied faults in Go map-iteration order, so the
// stuck cells' programming-variability draws differed from run to run.

// FaultModel describes a stuck-at defect population.
type FaultModel struct {
	// StuckOnRate is the fraction of cells stuck in the ON
	// (low-resistance / transparent) state.
	StuckOnRate float64
	// StuckOffRate is the fraction stuck OFF.
	StuckOffRate float64
	// Seed drives defect placement.
	Seed int64
}

// Validate checks the model.
func (f FaultModel) Validate() error {
	if f.StuckOnRate < 0 || f.StuckOffRate < 0 || f.StuckOnRate+f.StuckOffRate > 1 {
		return fmt.Errorf("crossbar: bad fault rates on=%g off=%g", f.StuckOnRate, f.StuckOffRate)
	}
	return nil
}

// InjectFaults overwrites a random subset of cells with stuck states.
// It returns the number of cells whose *logical* content changed (a
// stuck-ON fault under a stored 1 is harmless). Subsequent Program
// calls do not heal the defects: the fault mask is reapplied.
func (a *Array) InjectFaults(f FaultModel) (flipped int, err error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(f.Seed))
	a.stuckMask = bitops.NewMatrix(a.rows, a.cols)
	a.stuckState = bitops.NewMatrix(a.rows, a.cols)
	a.faultCount = 0
	for r := 0; r < a.rows; r++ {
		for c := 0; c < a.cols; c++ {
			u := rng.Float64()
			switch {
			case u < f.StuckOnRate:
				a.stuckMask.Set(r, c, true)
				a.stuckState.Set(r, c, true)
				a.faultCount++
			case u < f.StuckOnRate+f.StuckOffRate:
				a.stuckMask.Set(r, c, true)
				a.faultCount++
			}
		}
	}
	// flipped = |mask ∧ (programmed ⊕ stuckState)|, word-wise.
	pw, mw, sw := a.programmed.Words(), a.stuckMask.Words(), a.stuckState.Words()
	for i, m := range mw {
		flipped += bits.OnesCount64(m & (pw[i] ^ sw[i]))
	}
	a.applyFaults()
	return flipped, nil
}

// applyFaults forces every defective cell to its stuck state, writing
// the conductance/transmittance planes directly in row-major order and
// keeping the effective bit matrix in sync word-wise.
func (a *Array) applyFaults() {
	if a.stuckMask == nil {
		return
	}
	for r := 0; r < a.rows; r++ {
		mw := a.stuckMask.RowWords(r)
		sw := a.stuckState.RowWords(r)
		ew := a.effective.RowWords(r)
		base := r * a.cols
		for wi, w := range mw {
			ew[wi] = ew[wi]&^w | w&sw[wi]
		}
		forEachSet(mw, func(c int) {
			a.programCell(base+c, sw[c>>6]>>(uint(c)&63)&1 == 1)
		})
	}
}

// FaultCount returns the number of injected defects.
func (a *Array) FaultCount() int { return a.faultCount }

// EffectiveBits returns the logical matrix actually stored, i.e. the
// programmed bits with stuck cells overridden — what the analog compute
// really sees. The matrix is a fresh clone on every call.
func (a *Array) EffectiveBits() *bitops.Matrix {
	return a.effective.Clone()
}

// defectsPerColumn tallies the injected defects of every physical
// column (all zeros when no faults are injected).
func (a *Array) defectsPerColumn() []int {
	perCol := make([]int, a.cols)
	if a.stuckMask == nil {
		return perCol
	}
	for r := 0; r < a.rows; r++ {
		forEachSet(a.stuckMask.RowWords(r), func(c int) {
			perCol[c]++
		})
	}
	return perCol
}

// MaxPopcountError returns, for a faulty TacitMap-style array, the
// worst-case absolute popcount deviation of any column: each stuck cell
// in a column shifts that column's count by at most one.
func (a *Array) MaxPopcountError() int {
	worst := 0
	for _, n := range a.defectsPerColumn() {
		if n > worst {
			worst = n
		}
	}
	return worst
}
