package crossbar

import (
	"math/rand"
	"testing"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/device"
)

func TestIRDropValidate(t *testing.T) {
	if err := (IRDropModel{SegmentOhm: -1}).Validate(); err == nil {
		t.Fatal("expected error")
	}
	if err := (IRDropModel{SegmentOhm: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIRDropZeroMatchesVMM(t *testing.T) {
	cfg := smallConfig(device.EPCM, true, 0)
	arr, _ := NewArray(cfg)
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, cfg.Rows, cfg.Cols)
	_ = arr.Program(m)
	x := randomVector(rng, cfg.Rows)
	want, err := arr.VMM(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := arr.VMMWithIRDrop(x, IRDropModel{SegmentOhm: 0})
	if err != nil {
		t.Fatal(err)
	}
	for c := range want {
		if got[c] != want[c] {
			t.Fatalf("col %d: %d != %d with zero wire resistance", c, got[c], want[c])
		}
	}
}

func TestIRDropRequiresEPCM(t *testing.T) {
	arr, _ := NewArray(smallConfig(device.OPCM, true, 0))
	if _, err := arr.VMMWithIRDrop(bitops.NewVector(arr.Rows()), IRDropModel{SegmentOhm: 1}); err == nil {
		t.Fatal("expected ePCM-only error")
	}
}

func TestIRDropDegradesLargeArrays(t *testing.T) {
	// A small array survives realistic wire resistance; the far corner
	// of a large one under-counts.
	mdl := IRDropModel{SegmentOhm: 2}
	small, _ := NewArray(smallConfig(device.EPCM, true, 0)) // 64×32
	large := smallConfig(device.EPCM, true, 0)
	large.Rows, large.Cols = 512, 512
	large.ADCBits = 10
	big, err := NewArray(large)
	if err != nil {
		t.Fatal(err)
	}
	if small.WorstCaseAttenuation(mdl) <= big.WorstCaseAttenuation(mdl) {
		t.Fatal("attenuation must worsen with array size")
	}

	// Functional check on the big array: all-ones program, all-rows
	// drive → ideal popcount = rows everywhere; IR drop must lose counts
	// in far columns.
	ones := bitops.NewMatrix(large.Rows, large.Cols)
	for r := 0; r < large.Rows; r++ {
		for c := 0; c < large.Cols; c++ {
			ones.Set(r, c, true)
		}
	}
	_ = big.Program(ones)
	x := bitops.NewVector(large.Rows)
	for i := 0; i < large.Rows; i++ {
		x.Set(i)
	}
	got, err := big.VMMWithIRDrop(x, mdl)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] <= got[large.Cols-1] {
		t.Fatalf("near column %d should out-count far column %d", got[0], got[large.Cols-1])
	}
	if got[large.Cols-1] >= large.Rows {
		t.Fatal("far column must visibly under-count under IR drop")
	}
}

func TestAttenuationMonotone(t *testing.T) {
	m := IRDropModel{SegmentOhm: 1}
	p := device.DefaultEPCMParams()
	prev := 2.0
	for _, d := range []int{0, 10, 100, 500} {
		att := m.attenuation(d, d, 256, p.GOn)
		if att >= prev || att <= 0 || att > 1 {
			t.Fatalf("attenuation %g at distance %d not in (0, prev)", att, d)
		}
		prev = att
	}
}

func TestMaxCleanArraySize(t *testing.T) {
	p := device.DefaultEPCMParams()
	loose := IRDropModel{SegmentOhm: 0.5}
	tight := IRDropModel{SegmentOhm: 8}
	nl := loose.MaxCleanArraySize(p, 0.9)
	nt := tight.MaxCleanArraySize(p, 0.9)
	if nl <= nt {
		t.Fatalf("lower wire resistance must allow bigger arrays: %d vs %d", nl, nt)
	}
	if z := (IRDropModel{}).MaxCleanArraySize(p, 0.9); z < 4096 {
		t.Fatalf("zero resistance should be unbounded, got %d", z)
	}
}

func TestIRDropInputMismatch(t *testing.T) {
	arr, _ := NewArray(smallConfig(device.EPCM, true, 0))
	if _, err := arr.VMMWithIRDrop(bitops.NewVector(1), IRDropModel{}); err == nil {
		t.Fatal("expected length error")
	}
}
