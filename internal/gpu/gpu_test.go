package gpu

import (
	"testing"

	"einsteinbarrier/internal/bnn"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Model){
		func(m *Model) { m.FP32PerNs = 0 },
		func(m *Model) { m.BinOpsPerNs = -1 },
		func(m *Model) { m.BytesPerNs = 0 },
		func(m *Model) { m.DenseOverheadNs = -1 },
		func(m *Model) { m.PowerW = -1 },
	}
	for i, mutate := range cases {
		m := DefaultModel()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestLayerLatencyKinds(t *testing.T) {
	g := DefaultModel()
	binDense := bnn.LayerCost{
		Kind:            "binary",
		Work:            bnn.Workload{N: 1024, M: 1024, Positions: 1},
		ActivationBytes: 128,
	}
	if lat := g.LayerLatencyNs(binDense); lat < g.DenseOverheadNs {
		t.Fatalf("dense binary latency %g below overhead", lat)
	}
	conv := bnn.LayerCost{
		Kind:            "binary",
		Work:            bnn.Workload{N: 64, M: 576, Positions: 1024},
		ActivationBytes: 8192,
	}
	if lat := g.LayerLatencyNs(conv); lat < g.ConvOverheadNs {
		t.Fatalf("conv latency %g below conv overhead", lat)
	}
	shape := bnn.LayerCost{Kind: "shape"}
	if g.LayerLatencyNs(shape) != 0 {
		t.Fatal("shape layers must fuse for free")
	}
}

func TestMemoryBoundDenseFP(t *testing.T) {
	// A big fp dense layer at batch 1 is bandwidth-bound: latency should
	// track weight bytes / bandwidth.
	g := DefaultModel()
	fp := bnn.LayerCost{
		Kind: "fp", MACs: 784 * 3072,
		Work: bnn.Workload{N: 3072, M: 784, Positions: 1},
	}
	weightBytes := 3072.0 * 784 * 4
	want := g.DenseOverheadNs + weightBytes/g.BytesPerNs
	got := g.LayerLatencyNs(fp)
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("fp dense latency = %g, want ≈ %g", got, want)
	}
}

func TestInferenceLatencyAggregates(t *testing.T) {
	g := DefaultModel()
	m, err := bnn.NewModel("MLP-S", 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range m.Costs() {
		sum += g.LayerLatencyNs(c)
	}
	if got := g.InferenceLatencyNs(m); got != sum {
		t.Fatalf("InferenceLatencyNs = %g, want %g", got, sum)
	}
	if g.InferenceEnergyPJ(m) != g.PowerW*sum*1000 {
		t.Fatal("energy must be power × latency")
	}
}

func TestMLPsFasterThanCNNsOnGPU(t *testing.T) {
	// The crossover driver (paper observation 4): at batch 1 the GPU
	// handles MLPs well (few fused GEMV kernels) and CNNs poorly.
	g := DefaultModel()
	mlp, _ := bnn.NewModel("MLP-S", 1)
	cnn, _ := bnn.NewModel("CNN-S", 1)
	if g.InferenceLatencyNs(mlp) >= g.InferenceLatencyNs(cnn) {
		t.Fatal("MLP-S should be faster than CNN-S on the GPU model")
	}
}
