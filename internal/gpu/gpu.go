// Package gpu is the Baseline-GPU analytical model (paper §V-B): a
// roofline estimate of BNN inference on a data-center GPU running
// XNOR-popcount kernels (cf. PhoneBit / Nurvitadhi et al.). Each layer
// pays a kernel launch, then the maximum of its compute time and its
// memory time; weights stream from DRAM every inference (batch 1, no
// persistence), which is the data-movement overhead CIM removes.
package gpu

import (
	"fmt"

	"einsteinbarrier/internal/bnn"
)

// Model holds the GPU machine parameters.
type Model struct {
	// FP32PerNs is the effective full-precision throughput in MAC/ns at
	// batch 1 (far below peak: small GEMMs underfill the SMs).
	FP32PerNs float64
	// BinOpsPerNs is the effective XNOR+popcount throughput in
	// bit-op/ns at batch 1.
	BinOpsPerNs float64
	// BytesPerNs is the effective DRAM bandwidth (a 300 GB/s part moves
	// 300 B/ns).
	BytesPerNs float64
	// DenseOverheadNs is the per-layer overhead of a dense layer: one
	// GEMV kernel launch plus framework dispatch.
	DenseOverheadNs float64
	// ConvOverheadNs is the per-layer overhead of a convolution at
	// batch 1: im2col + GEMM + binarize/pool kernels and algorithm
	// selection — several launches, the dominant cost of small CNNs
	// (cf. PhoneBit's motivation).
	ConvOverheadNs float64
	// PowerW is the board power while busy, for energy estimates.
	PowerW float64
}

// DefaultModel returns a V100-class part at inference batch 1.
func DefaultModel() Model {
	return Model{
		FP32PerNs:       2000,
		BinOpsPerNs:     20000,
		BytesPerNs:      300,
		DenseOverheadNs: 8000,
		ConvOverheadNs:  150000,
		PowerW:          250,
	}
}

// Validate checks the parameters.
func (m Model) Validate() error {
	if m.FP32PerNs <= 0 || m.BinOpsPerNs <= 0 || m.BytesPerNs <= 0 {
		return fmt.Errorf("gpu: throughputs must be positive: %+v", m)
	}
	if m.DenseOverheadNs < 0 || m.ConvOverheadNs < 0 || m.PowerW < 0 {
		return fmt.Errorf("gpu: negative overhead/power: %+v", m)
	}
	return nil
}

// overhead returns the per-layer dispatch cost by layer shape.
func (m Model) overhead(c bnn.LayerCost) float64 {
	if c.Work.Positions > 1 {
		return m.ConvOverheadNs
	}
	return m.DenseOverheadNs
}

// LayerLatencyNs prices one layer.
func (m Model) LayerLatencyNs(c bnn.LayerCost) float64 {
	switch c.Kind {
	case "binary":
		ops := float64(c.Work.Ops())
		weightBytes := float64(c.Work.N) * float64(c.Work.M) / 8
		bytes := float64(c.ActivationBytes) + weightBytes
		return m.overhead(c) + max(ops/m.BinOpsPerNs, bytes/m.BytesPerNs)
	case "fp":
		macs := float64(c.MACs)
		weightBytes := float64(c.Work.N) * float64(c.Work.M) * 4
		bytes := float64(c.ActivationBytes) + weightBytes
		return m.overhead(c) + max(macs/m.FP32PerNs, bytes/m.BytesPerNs)
	default: // shape layers fuse into neighbors
		return 0
	}
}

// InferenceLatencyNs prices a full single-sample inference.
func (m Model) InferenceLatencyNs(model *bnn.Model) float64 {
	var total float64
	for _, c := range model.Costs() {
		total += m.LayerLatencyNs(c)
	}
	return total
}

// InferenceEnergyPJ estimates energy as busy power × latency.
// (1 W × 1 ns = 1 nJ = 1000 pJ.)
func (m Model) InferenceEnergyPJ(model *bnn.Model) float64 {
	return m.PowerW * m.InferenceLatencyNs(model) * 1000
}
